"""WireCodec: varints, address deltas, frames, and channel integration."""

import pytest

from repro.core import messages as msg
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.errors import ChannelError, WireError
from repro.net.blocking import BlockingChannel
from repro.net.channel import Channel
from repro.net.wire import (
    FrameWriter,
    WireCodec,
    WireFrame,
    read_svarint,
    read_uvarint,
    write_svarint,
    write_uvarint,
)
from repro.relation.row import Row, encode_row, encoded_fields_size
from repro.relation.schema import Column, Schema
from repro.relation.types import NULL, FloatType, IntType, StringType
from repro.storage.rid import Rid


def value_schema() -> Schema:
    return Schema(
        [
            Column("id", IntType(), nullable=False),
            Column("name", StringType(), nullable=True),
            Column("score", FloatType(), nullable=True),
        ]
    )


def entry(addr: Rid, prev: Rid, values) -> msg.EntryMessage:
    body = len(encode_row(value_schema(), Row(list(values))))
    return msg.EntryMessage(addr, prev, tuple(values), body)


class TestVarints:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 300, 2**21, 2**63, 2**70]
    )
    def test_uvarint_round_trip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, offset = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    @pytest.mark.parametrize(
        "value", [0, 1, -1, 63, -64, 64, -65, 2**40, -(2**40)]
    )
    def test_svarint_round_trip(self, value):
        out = bytearray()
        write_svarint(out, value)
        decoded, offset = read_svarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    def test_small_magnitudes_are_one_byte_either_sign(self):
        for value in (-64, -1, 0, 1, 63):
            out = bytearray()
            write_svarint(out, value)
            assert len(out) == 1

    def test_negative_uvarint_rejected(self):
        with pytest.raises(WireError):
            write_uvarint(bytearray(), -1)

    def test_truncated_varint_detected(self):
        with pytest.raises(WireError):
            read_uvarint(b"\x80\x80", 0)


class TestMessageRoundTrip:
    def round_trip(self, messages, compress=False, base_time=0):
        codec = WireCodec(
            value_schema(), compress=compress, base_time=base_time
        )
        frame = codec.encode_frame(messages)
        return codec.decode_frame(frame)

    def test_all_message_kinds(self):
        schema = value_schema()
        values = (7, "seven", 7.5)
        body = len(encode_row(schema, Row(list(values))))
        stream = [
            msg.RefreshBeginMessage(41),
            msg.ClearMessage(),
            entry(Rid(0, 1), Rid.BEGIN, values),
            msg.UpdateDeltaMessage(
                Rid(0, 3),
                Rid(0, 1),
                0b101,
                (8, 8.5),
                encoded_fields_size(schema, [0, 2], (8, 8.5)),
            ),
            msg.DeleteRangeMessage(Rid(0, 3), Rid(2, 0)),
            msg.UpsertMessage(Rid(2, 0), values, body),
            msg.FullRowMessage(Rid(2, 1), values, body),
            msg.DeleteMessage(Rid(2, 1)),
            msg.EndOfScanMessage(Rid(2, 0)),
            msg.SnapTimeMessage(43),
            msg.RefreshCommitMessage(41, 9),
        ]
        decoded = self.round_trip(stream, base_time=40)
        assert [type(m) for m in decoded] == [type(m) for m in stream]
        for original, copy in zip(stream, decoded):
            assert copy.wire_size() == original.wire_size()
        assert decoded[2].addr == Rid(0, 1)
        assert decoded[2].values == values
        assert decoded[3].mask == 0b101
        assert decoded[3].values == (8, 8.5)
        assert decoded[3].positions() == [0, 2]
        assert decoded[4].lo == Rid(0, 3) and decoded[4].hi == Rid(2, 0)
        assert decoded[9].time == 43
        assert decoded[10].epoch == 41 and decoded[10].count == 9

    def test_null_values_survive(self):
        decoded = self.round_trip([entry(Rid(1, 0), Rid.BEGIN, (3, NULL, NULL))])
        assert decoded[0].values == (3, NULL, NULL)
        assert decoded[0].values[1] is NULL

    def test_segment_hash_pair_roundtrip(self):
        digest = bytes(range(8))
        stream = [
            msg.SegmentHashRequestMessage(0, 128),
            msg.SegmentHashResponseMessage(64, 128, digest, 977),
        ]
        decoded = self.round_trip(stream)
        request, response = decoded
        assert isinstance(request, msg.SegmentHashRequestMessage)
        assert (request.lo, request.hi) == (0, 128)
        assert isinstance(response, msg.SegmentHashResponseMessage)
        assert (response.lo, response.hi) == (64, 128)
        assert response.digest == digest
        assert response.count == 977
        for original, copy in zip(stream, decoded):
            assert copy.wire_size() == original.wire_size()
            assert not copy.counts_as_entry

    def test_row_digests_roundtrip(self):
        entries = ((0, b"\x01\x02\x03\x04"), (7, b"\xaa\xbb\xcc\xdd"))
        stream = [msg.RowDigestsMessage(42, entries)]
        (decoded,) = self.round_trip(stream)
        assert isinstance(decoded, msg.RowDigestsMessage)
        assert decoded.page_no == 42
        assert decoded.entries == entries
        assert decoded.wire_size() == stream[0].wire_size()
        assert not decoded.counts_as_entry

    def test_empty_row_digests_roundtrip(self):
        (decoded,) = self.round_trip([msg.RowDigestsMessage(3, ())])
        assert decoded.page_no == 3
        assert decoded.entries == ()

    def test_sequential_addresses_encode_small(self):
        # Address-order scan: same-page successors should cost ~2 bytes
        # for addr + prev together, not 16.
        codec = WireCodec(Schema([Column("v", IntType())]))
        schema = Schema([Column("v", IntType())])
        stream = []
        prev = Rid.BEGIN
        for slot in range(50):
            rid = Rid(9, slot)
            body = len(encode_row(schema, Row([slot])))
            stream.append(msg.EntryMessage(rid, prev, (slot,), body))
            prev = rid
        frame = codec.encode_frame(stream)
        assert codec.decode_frame(frame) is not None
        # tag + addr + prev + bitmap + value ≈ 7-8 bytes/entry at worst.
        assert frame.wire_size() <= 8 * len(stream)
        assert frame.wire_size() < frame.modeled_size / 3

    def test_compression_only_when_smaller(self):
        repetitive = [
            entry(Rid(0, i), Rid(0, i - 1) if i else Rid.BEGIN, (1, "aaaa", 0.0))
            for i in range(64)
        ]
        plain = WireCodec(value_schema()).encode_frame(repetitive)
        squeezed = WireCodec(value_schema(), compress=True).encode_frame(
            repetitive
        )
        assert squeezed.wire_size() < plain.wire_size()
        # A frame too small to benefit ships uncompressed (flags bit 0
        # unset) and still decodes through the same codec.
        tiny = WireCodec(value_schema(), compress=True).encode_frame(
            [msg.ClearMessage()]
        )
        assert tiny.data[0] == 0
        assert len(
            WireCodec(value_schema(), compress=True).decode_frame(tiny)
        ) == 1

    def test_decoded_modeled_size_matches_sender(self):
        stream = [
            entry(Rid(4, 2), Rid(3, 9), (123456, "x" * 30, -0.5)),
            msg.UpdateDeltaMessage(Rid(4, 3), Rid(4, 2), 0b10, ("y",), 4),
        ]
        codec = WireCodec(value_schema())
        for original, copy in zip(stream, codec.decode_frame(codec.encode_frame(stream))):
            assert copy.wire_size() == original.wire_size()
            assert copy.value_bytes == original.value_bytes

    def test_trailing_garbage_rejected(self):
        codec = WireCodec(value_schema())
        frame = codec.encode_frame([msg.ClearMessage()])
        with pytest.raises(WireError):
            codec.decode_frame(frame.data + b"\x00")

    def test_unknown_message_rejected(self):
        with pytest.raises(WireError):
            WireCodec(value_schema()).encode_frame([object()])


class TestFrameWriter:
    def make(self, **kwargs):
        frames = []
        codec = WireCodec(value_schema())
        writer = FrameWriter(frames.append, codec, **kwargs)
        return writer, frames, codec

    def test_flush_at_message_count(self):
        writer, frames, _ = self.make(flush_messages=4)
        for i in range(10):
            writer.send(entry(Rid(0, i), Rid.BEGIN, (i, "n", 0.0)))
        assert len(frames) == 2
        assert all(len(frame) == 4 for frame in frames)
        assert writer.pending == 2
        writer.flush()
        assert len(frames) == 3 and len(frames[-1]) == 2
        assert writer.frames_sent == 3

    def test_flush_at_byte_threshold(self):
        writer, frames, _ = self.make(flush_messages=1000, flush_bytes=64)
        while not frames:
            writer.send(entry(Rid(0, 0), Rid.BEGIN, (1, "abcdefgh", 2.0)))
        assert frames[0].wire_size() >= 64

    def test_commit_forces_flush(self):
        # Frames never straddle refresh epochs.
        writer, frames, _ = self.make(flush_messages=1000)
        writer.send(msg.RefreshBeginMessage(7))
        writer.send(entry(Rid(0, 0), Rid.BEGIN, (1, "n", 0.0)))
        writer.send(msg.RefreshCommitMessage(7, 1))
        assert len(frames) == 1
        assert writer.pending == 0

    def test_abort_drops_pending(self):
        writer, frames, _ = self.make(flush_messages=1000)
        writer.send(entry(Rid(0, 0), Rid.BEGIN, (1, "n", 0.0)))
        assert writer.abort() == 1
        writer.flush()
        assert frames == []

    def test_delta_state_resets_per_frame(self):
        # Each frame decodes standalone: losing one cannot corrupt the next.
        writer, frames, codec = self.make(flush_messages=2)
        prev = Rid.BEGIN
        for slot in range(6):
            rid = Rid(3, slot)
            writer.send(entry(rid, prev, (slot, "n", 0.0)))
            prev = rid
        assert len(frames) == 3
        later = codec.decode_frame(frames[2])  # decoded without frames 0-1
        assert later[0].addr == Rid(3, 4)
        assert later[0].prev_qual == Rid(3, 3)

    def test_bad_thresholds_rejected(self):
        codec = WireCodec(value_schema())
        with pytest.raises(WireError):
            FrameWriter(lambda f: None, codec, flush_messages=0)
        with pytest.raises(WireError):
            FrameWriter(lambda f: None, codec, flush_messages=4, flush_bytes=0)


class TestChannelIntegration:
    def test_enable_wire_transports_frames(self):
        channel = Channel()
        channel.enable_wire(WireCodec(value_schema()), flush_messages=3)
        received = []
        channel.attach(received.append)
        stream = [
            entry(Rid(0, i), Rid(0, i - 1) if i else Rid.BEGIN, (i, "n", 0.0))
            for i in range(7)
        ]
        for message in stream:
            channel.send(message)
        channel.flush()
        # Receiver sees decoded logical messages, not frames.
        assert [m.addr for m in received] == [m.addr for m in stream]
        assert channel.stats.messages == 3  # physical frames
        assert channel.stats.bytes < channel.stats.modeled_bytes
        assert channel.stats.modeled_bytes == sum(
            m.wire_size() for m in stream
        ) + 3 * 64  # FRAME_OVERHEAD per frame

    def test_enable_wire_after_attach_rejected(self):
        channel = Channel()
        channel.attach(lambda m: None)
        with pytest.raises(ChannelError):
            channel.enable_wire(WireCodec(value_schema()))

    def test_double_enable_rejected(self):
        channel = Channel()
        channel.enable_wire(WireCodec(value_schema()))
        with pytest.raises(ChannelError):
            channel.enable_wire(WireCodec(value_schema()))

    def test_abort_returns_dropped_count(self):
        channel = Channel()
        channel.enable_wire(WireCodec(value_schema()), flush_messages=100)
        channel.attach(lambda m: None)
        channel.send(entry(Rid(0, 0), Rid.BEGIN, (1, "n", 0.0)))
        assert channel.abort() == 1
        assert channel.stats.messages == 0

    def test_object_mode_flush_and_abort_are_noops(self):
        channel = Channel()
        channel.attach(lambda m: None)
        channel.flush()
        assert channel.abort() == 0

    def test_blocking_channel_rejects_wire_enabled_inner(self):
        inner = Channel()
        inner.enable_wire(WireCodec(value_schema()))
        with pytest.raises(ChannelError):
            BlockingChannel(inner, codec=WireCodec(value_schema()))

    def test_blocking_channel_ships_wire_frames(self):
        inner = Channel()
        blocked = BlockingChannel(
            inner, block_size=4, codec=WireCodec(value_schema())
        )
        received = []
        blocked.attach(received.append)
        stream = [
            entry(Rid(0, i), Rid(0, i - 1) if i else Rid.BEGIN, (i, "n", 0.0))
            for i in range(8)
        ]
        for message in stream:
            blocked.send(message)
        assert len(received) == 8
        assert inner.stats.messages == 2
        assert inner.stats.bytes < inner.stats.modeled_bytes


class TestEpochSemanticsThroughWire:
    def test_staged_epoch_commits_across_frames(self):
        db = Database()
        schema = Schema([Column("v", IntType())])
        snap = SnapshotTable(db, "s", schema, require_epochs=True)
        channel = Channel()
        channel.enable_wire(WireCodec(schema), flush_messages=2)
        channel.attach(snap.receiver())

        body = len(encode_row(schema, Row([5])))
        channel.send(msg.RefreshBeginMessage(1))
        channel.send(msg.EntryMessage(Rid(0, 0), Rid.BEGIN, (5,), body))
        channel.send(msg.EntryMessage(Rid(0, 1), Rid(0, 0), (6,), body))
        channel.send(msg.EndOfScanMessage(Rid(0, 1)))
        channel.send(msg.SnapTimeMessage(9))
        channel.send(msg.RefreshCommitMessage(1, 4))
        assert snap.last_committed_epoch == 1
        assert snap.snap_time == 9
        assert snap.as_map() == {Rid(0, 0): (5,), Rid(0, 1): (6,)}
