"""FaultyLink: scripted outages, drops, duplicates — all deterministic."""

import pytest

from repro.errors import LinkDownError, ReproError
from repro.net.faults import FaultyLink


class Msg:
    def __init__(self, size=10):
        self._size = size

    def wire_size(self):
        return self._size


class TestOutageWindows:
    def test_window_fails_inside_and_recovers_after(self):
        link = FaultyLink(outages=[(2, 4)])
        received = []
        link.attach(received.append)
        link.send(Msg())  # send 0
        link.send(Msg())  # send 1
        with pytest.raises(LinkDownError):
            link.send(Msg())  # send 2: in the window
        with pytest.raises(LinkDownError):
            link.send(Msg())  # send 3: still down
        link.send(Msg())  # send 4: window passed
        assert len(received) == 3
        assert link.failed_sends == 2
        assert link.attempts == 5

    def test_fail_at_is_relative_to_now(self):
        link = FaultyLink()
        link.attach(lambda m: None)
        link.send(Msg())
        link.send(Msg())
        link.fail_at(1)  # the send after next fails
        link.send(Msg())
        with pytest.raises(LinkDownError):
            link.send(Msg())
        link.send(Msg())

    def test_periodic_outage_rate(self):
        # Last 2 of every 5 sends fail: 0,1,2 ok / 3,4 down / 5,6,7 ok...
        link = FaultyLink(periodic_outage=(2, 5))
        link.attach(lambda m: None)
        outcomes = []
        for _ in range(10):
            try:
                link.send(Msg())
                outcomes.append("ok")
            except LinkDownError:
                outcomes.append("down")
        assert outcomes == ["ok"] * 3 + ["down"] * 2 + ["ok"] * 3 + ["down"] * 2

    def test_manual_go_down_still_works(self):
        link = FaultyLink()
        link.attach(lambda m: None)
        link.go_down()
        with pytest.raises(LinkDownError):
            link.send(Msg())
        link.come_up()
        link.send(Msg())

    def test_bad_windows_rejected(self):
        with pytest.raises(ReproError):
            FaultyLink(outages=[(5, 5)])
        with pytest.raises(ReproError):
            FaultyLink(periodic_outage=(5, 5))
        with pytest.raises(ReproError):
            FaultyLink(drop_every=1)


class TestDropAndDuplicate:
    def test_drop_every_nth_is_silent(self):
        link = FaultyLink(drop_every=3)
        received = []
        link.attach(received.append)
        for _ in range(9):
            link.send(Msg())  # sends 3, 6, 9 (1-based) are swallowed
        assert len(received) == 6
        assert link.dropped == 3
        assert link.failed_sends == 0  # drops do not raise
        assert link.stats.messages == 6  # dropped bytes never crossed

    def test_duplicate_every_nth_delivers_twice(self):
        link = FaultyLink(duplicate_every=2)
        received = []
        link.attach(received.append)
        first, second = Msg(), Msg()
        link.send(first)
        link.send(second)
        assert received == [first, second, second]
        assert link.duplicated == 1
        assert link.stats.messages == 3  # duplicate traffic is real traffic

    def test_clear_faults(self):
        link = FaultyLink(outages=[(0, 100)], drop_every=2)
        link.attach(lambda m: None)
        with pytest.raises(LinkDownError):
            link.send(Msg())
        link.clear_faults()
        link.send(Msg())
        assert link.stats.messages == 1
        assert link.dropped == 0


class TestComeUpFlushOrdering:
    def test_queued_backlog_flushes_before_new_sends(self):
        # Messages queued while no receiver was attached must deliver —
        # in order, counted once each — before anything sent after
        # come_up, or the receiver's SnapTime ordering breaks.
        link = FaultyLink()
        early, late = Msg(3), Msg(5)
        link.send(early)  # no receiver: queued, not yet traffic
        assert link.stats.messages == 0
        received = []
        link.attach(received.append)
        assert received == [early]
        link.go_down()
        with pytest.raises(LinkDownError):
            link.send(Msg())
        link.come_up()
        link.send(late)
        assert received == [early, late]
        assert link.stats.messages == 2
        assert link.stats.bytes == 8


class TestFrameFaults:
    """Frame-granular loss on blocked/encoded transports."""

    def _fleet(self, **create_kwargs):
        from repro.core.manager import SnapshotManager
        from repro.database import Database

        db = Database()
        table = db.create_table("t", [("v", "int")], annotations="lazy")
        rids = [table.insert([i]) for i in range(80)]
        link = FaultyLink()
        manager = SnapshotManager(db)
        snap = manager.create_snapshot(
            "s", "t", where="v >= 0", channel=link, **create_kwargs
        )
        return table, rids, link, manager, snap

    def _truth(self, table):
        return {rid: row.values for rid, row in table.scan(visible=True)}

    def test_plain_messages_do_not_count_as_frames(self):
        link = FaultyLink(drop_frame_every=2)
        received = []
        link.attach(received.append)
        for _ in range(6):
            link.send(Msg())
        assert received and len(received) == 6
        assert link.frame_attempts == 0
        assert link.frames_dropped == 0

    def test_object_frame_drop_counts_frames_only(self):
        from repro.net.blocking import Frame

        link = FaultyLink(drop_frame_every=2)
        received = []
        link.attach(received.append)
        link.send(Msg())
        link.send(Frame([Msg(), Msg()]))  # frame 1: delivered
        link.send(Frame([Msg()]))  # frame 2: dropped
        link.send(Msg())
        assert link.frame_attempts == 2
        assert link.frames_dropped == 1
        assert len(received) == 3  # 2 messages + 1 surviving frame

    def test_partial_frame_loss_caught_by_epoch_count(self):
        """A dropped wire frame mid-epoch is detected, not committed."""
        from repro.errors import EpochError

        table, rids, link, manager, snap = self._fleet(
            wire_format=True, frame_messages=8
        )
        before_map = snap.table.as_map()
        before_time = snap.table.snap_time
        for i in range(10, 60):
            table.update(rids[i], {"v": i + 1000})

        # Drop the second frame of the refresh stream: the receiver
        # stages too few messages, and the commit's count mismatches.
        link.drop_frame_every = 2
        with pytest.raises(EpochError):
            snap.refresh()
        assert snap.table.as_map() == before_map
        assert snap.table.snap_time == before_time
        assert link.frames_dropped >= 1

        # With the link healthy again, the same refresh goes through and
        # the value mirror / page caches resume from the failed attempt.
        link.clear_faults()
        snap.refresh()
        assert snap.table.as_map() == self._truth(table)

    def test_partial_frame_loss_on_blocked_object_transport(self):
        from repro.errors import EpochError

        table, rids, link, manager, snap = self._fleet(block_size=8)
        before_map = snap.table.as_map()
        for i in range(10, 60):
            table.update(rids[i], {"v": i + 1000})
        link.drop_frame_every = 2
        with pytest.raises(EpochError):
            snap.refresh()
        assert snap.table.as_map() == before_map
        link.clear_faults()
        snap.refresh()
        assert snap.table.as_map() == self._truth(table)

    def test_wire_frame_duplicate_caught_by_epoch_count(self):
        # Encoded frames decode to fresh message objects, so the
        # receiver's per-epoch identity dedupe cannot absorb a
        # duplicated frame — the commit count catches it instead.
        from repro.errors import EpochError

        table, rids, link, manager, snap = self._fleet(
            wire_format=True, frame_messages=8
        )
        before_map = snap.table.as_map()
        for i in range(10, 60):
            table.update(rids[i], {"v": i + 1000})
        link.duplicate_frame_every = 2
        with pytest.raises(EpochError):
            snap.refresh()
        assert snap.table.as_map() == before_map
        link.clear_faults()
        snap.refresh()
        assert snap.table.as_map() == self._truth(table)

    def test_frame_knob_validation(self):
        with pytest.raises(ReproError):
            FaultyLink(drop_frame_every=1)
        with pytest.raises(ReproError):
            FaultyLink(duplicate_frame_every=0)
