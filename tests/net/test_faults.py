"""FaultyLink: scripted outages, drops, duplicates — all deterministic."""

import pytest

from repro.errors import LinkDownError, ReproError
from repro.net.faults import FaultyLink


class Msg:
    def __init__(self, size=10):
        self._size = size

    def wire_size(self):
        return self._size


class TestOutageWindows:
    def test_window_fails_inside_and_recovers_after(self):
        link = FaultyLink(outages=[(2, 4)])
        received = []
        link.attach(received.append)
        link.send(Msg())  # send 0
        link.send(Msg())  # send 1
        with pytest.raises(LinkDownError):
            link.send(Msg())  # send 2: in the window
        with pytest.raises(LinkDownError):
            link.send(Msg())  # send 3: still down
        link.send(Msg())  # send 4: window passed
        assert len(received) == 3
        assert link.failed_sends == 2
        assert link.attempts == 5

    def test_fail_at_is_relative_to_now(self):
        link = FaultyLink()
        link.attach(lambda m: None)
        link.send(Msg())
        link.send(Msg())
        link.fail_at(1)  # the send after next fails
        link.send(Msg())
        with pytest.raises(LinkDownError):
            link.send(Msg())
        link.send(Msg())

    def test_periodic_outage_rate(self):
        # Last 2 of every 5 sends fail: 0,1,2 ok / 3,4 down / 5,6,7 ok...
        link = FaultyLink(periodic_outage=(2, 5))
        link.attach(lambda m: None)
        outcomes = []
        for _ in range(10):
            try:
                link.send(Msg())
                outcomes.append("ok")
            except LinkDownError:
                outcomes.append("down")
        assert outcomes == ["ok"] * 3 + ["down"] * 2 + ["ok"] * 3 + ["down"] * 2

    def test_manual_go_down_still_works(self):
        link = FaultyLink()
        link.attach(lambda m: None)
        link.go_down()
        with pytest.raises(LinkDownError):
            link.send(Msg())
        link.come_up()
        link.send(Msg())

    def test_bad_windows_rejected(self):
        with pytest.raises(ReproError):
            FaultyLink(outages=[(5, 5)])
        with pytest.raises(ReproError):
            FaultyLink(periodic_outage=(5, 5))
        with pytest.raises(ReproError):
            FaultyLink(drop_every=1)


class TestDropAndDuplicate:
    def test_drop_every_nth_is_silent(self):
        link = FaultyLink(drop_every=3)
        received = []
        link.attach(received.append)
        for _ in range(9):
            link.send(Msg())  # sends 3, 6, 9 (1-based) are swallowed
        assert len(received) == 6
        assert link.dropped == 3
        assert link.failed_sends == 0  # drops do not raise
        assert link.stats.messages == 6  # dropped bytes never crossed

    def test_duplicate_every_nth_delivers_twice(self):
        link = FaultyLink(duplicate_every=2)
        received = []
        link.attach(received.append)
        first, second = Msg(), Msg()
        link.send(first)
        link.send(second)
        assert received == [first, second, second]
        assert link.duplicated == 1
        assert link.stats.messages == 3  # duplicate traffic is real traffic

    def test_clear_faults(self):
        link = FaultyLink(outages=[(0, 100)], drop_every=2)
        link.attach(lambda m: None)
        with pytest.raises(LinkDownError):
            link.send(Msg())
        link.clear_faults()
        link.send(Msg())
        assert link.stats.messages == 1
        assert link.dropped == 0


class TestComeUpFlushOrdering:
    def test_queued_backlog_flushes_before_new_sends(self):
        # Messages queued while no receiver was attached must deliver —
        # in order, counted once each — before anything sent after
        # come_up, or the receiver's SnapTime ordering breaks.
        link = FaultyLink()
        early, late = Msg(3), Msg(5)
        link.send(early)  # no receiver: queued, not yet traffic
        assert link.stats.messages == 0
        received = []
        link.attach(received.append)
        assert received == [early]
        link.go_down()
        with pytest.raises(LinkDownError):
            link.send(Msg())
        link.come_up()
        link.send(late)
        assert received == [early, late]
        assert link.stats.messages == 2
        assert link.stats.bytes == 8
