"""Channels: delivery, queueing, counting, link failures."""

import pytest

from repro.errors import ChannelError, LinkDownError
from repro.net.channel import Channel, Link


class Msg:
    """Minimal sized message for channel tests."""

    def __init__(self, size=10):
        self._size = size

    def wire_size(self):
        return self._size


class TestChannel:
    def test_synchronous_delivery(self):
        channel = Channel()
        received = []
        channel.attach(received.append)
        message = Msg()
        channel.send(message)
        assert received == [message]

    def test_queues_without_receiver(self):
        channel = Channel()
        channel.send(Msg())
        assert channel.queued == 1

    def test_attach_flushes_queue(self):
        channel = Channel()
        first = Msg()
        channel.send(first)
        received = []
        channel.attach(received.append)
        assert received == [first]
        assert channel.queued == 0

    def test_double_attach_rejected(self):
        channel = Channel()
        channel.attach(lambda m: None)
        with pytest.raises(ChannelError):
            channel.attach(lambda m: None)

    def test_detach_then_queue(self):
        channel = Channel()
        channel.attach(lambda m: None)
        channel.detach()
        channel.send(Msg())
        assert channel.queued == 1

    def test_drain(self):
        channel = Channel()
        channel.send(Msg())
        channel.send(Msg())
        assert len(channel.drain()) == 2
        assert channel.queued == 0


class TestStats:
    def test_counts_messages_and_bytes(self):
        channel = Channel()
        channel.attach(lambda m: None)
        channel.send(Msg(7))
        channel.send(Msg(13))
        assert channel.stats.messages == 2
        assert channel.stats.bytes == 20

    def test_by_type(self):
        channel = Channel()
        channel.attach(lambda m: None)
        channel.send(Msg())
        assert channel.stats.by_type == {"Msg": 1}
        assert channel.stats.bytes_by_type == {"Msg": 10}

    def test_reset(self):
        channel = Channel()
        channel.attach(lambda m: None)
        channel.send(Msg())
        channel.stats.reset()
        assert channel.stats.messages == 0
        assert channel.stats.by_type == {}

    def test_snapshot_dict(self):
        channel = Channel()
        channel.attach(lambda m: None)
        channel.send(Msg())
        summary = channel.stats.snapshot()
        assert summary["messages"] == 1
        assert summary["Msg"] == 1

    def test_queued_messages_are_not_traffic(self):
        # Regression: `send` used to count a message even when it was
        # only queued, and drain() then discarded it — inflating the
        # paper's headline traffic metric with bytes that never moved.
        channel = Channel()
        channel.send(Msg(10))
        channel.send(Msg(10))
        assert channel.stats.messages == 0
        assert channel.stats.bytes == 0
        drained = channel.drain()
        assert len(drained) == 2
        assert channel.stats.messages == 0  # still no traffic
        assert channel.drained_messages == 2
        assert channel.drained_bytes == 20

    def test_queued_messages_count_when_flushed_on_attach(self):
        channel = Channel()
        channel.send(Msg(10))
        received = []
        channel.attach(received.append)
        assert len(received) == 1
        assert channel.stats.messages == 1
        assert channel.stats.bytes == 10
        assert channel.drained_messages == 0


class TestLink:
    def test_down_link_raises(self):
        link = Link()
        link.go_down()
        with pytest.raises(LinkDownError):
            link.send(Msg())
        assert link.failed_sends == 1

    def test_failed_sends_not_counted_as_traffic(self):
        link = Link()
        link.go_down()
        with pytest.raises(LinkDownError):
            link.send(Msg())
        assert link.stats.messages == 0

    def test_recovery(self):
        link = Link()
        received = []
        link.attach(received.append)
        link.go_down()
        assert not link.is_up
        link.come_up()
        link.send(Msg())
        assert len(received) == 1
