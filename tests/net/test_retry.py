"""RetryPolicy backoff math and the manager's retry driver end to end."""

import pytest

from repro.core.manager import SnapshotManager
from repro.database import Database
from repro.errors import ReproError, RetryExhaustedError
from repro.net.faults import FaultyLink
from repro.net.retry import RetryPolicy


class TestBackoffMath:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, jitter=0.0)
        assert [policy.delay(n, now=0) for n in (1, 2, 3, 4)] == [1, 2, 4, 8]

    def test_max_delay_caps_the_exponent(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=50.0, jitter=0.0
        )
        assert policy.delay(5, now=0) == 50.0

    def test_deterministic_for_same_clock_and_attempt(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay(3, now=41) == policy.delay(3, now=41)
        # ...and varies when either input varies (decorrelation).
        assert policy.delay(3, now=41) != policy.delay(3, now=42)
        assert policy.delay(3, now=41) != policy.delay(2, now=41)

    def test_jitter_only_shortens(self):
        policy = RetryPolicy(base_delay=4.0, multiplier=2.0, jitter=0.5)
        for attempt in range(1, 6):
            for now in range(50):
                raw = min(4.0 * 2.0 ** (attempt - 1), policy.max_delay)
                d = policy.delay(attempt, now)
                assert raw * 0.5 <= d <= raw

    def test_jitter_never_exceeds_max_delay(self):
        # Regression: jitter used to apply after the cap, so any jitter
        # shortfall recovered by the hash could not push past max_delay
        # only by luck.  The cap is now applied last and is absolute.
        policy = RetryPolicy(
            base_delay=8.0, multiplier=4.0, max_delay=20.0, jitter=0.3
        )
        for attempt in range(1, 8):
            for now in range(40):
                assert policy.delay(attempt, now) <= 20.0

    def test_exact_jittered_sequence_is_pinned(self):
        # The jitter hash is a fixed multiplicative mix of (now, attempt);
        # pin the exact delays so any change to the math is loud.
        policy = RetryPolicy(
            base_delay=2.0, multiplier=2.0, max_delay=9.0, jitter=0.5
        )
        observed = [policy.delay(n, now=7) for n in (1, 2, 3, 4)]
        expected = []
        for attempt in (1, 2, 3, 4):
            raw = 2.0 * 2.0 ** (attempt - 1)
            mixed = (7 * 2654435761 + attempt * 0x9E3779B1) % 2**32
            fraction = mixed / (2**32 - 1)
            expected.append(min(raw * (1.0 - 0.5 * fraction), 9.0))
        assert observed == expected
        # The capped tail really is the cap when the jitter draw is high
        # enough to stay above it (attempt 4: raw 16 jittered >= 8 > 9?).
        assert observed[3] <= 9.0

    def test_pause_records_and_invokes_sleeper(self):
        slept = []
        policy = RetryPolicy(sleeper=slept.append)
        assert policy.pause(2.5) == 2.5
        policy.pause(1.5)
        assert slept == [2.5, 1.5]
        assert policy.total_waited == 4.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ReproError):
            RetryPolicy(budget=-1)
        with pytest.raises(ReproError):
            RetryPolicy().delay(0, now=0)


def build_world(link, initial_refresh=True, **manager_kwargs):
    hq = Database("hq")
    emp = hq.create_table("emp", [("v", "int")])
    rids = [emp.insert([i]) for i in range(12)]
    manager = SnapshotManager(hq, **manager_kwargs)
    snap = manager.create_snapshot(
        "s", "emp", method="differential", channel=link,
        initial_refresh=initial_refresh,
    )
    return hq, emp, rids, manager, snap


def truth(emp):
    return {rid: row.values for rid, row in emp.scan(visible=True)}


class TestManagerRetry:
    def test_mid_stream_failure_is_retried_to_convergence(self):
        link = FaultyLink()
        hq, emp, rids, manager, snap = build_world(
            link, retry_policy=RetryPolicy(max_attempts=4, jitter=0.0)
        )
        emp.update(rids[0], {"v": 100})
        emp.update(rids[7], {"v": 700})
        link.fail_at(3)  # dies after Begin + a couple of entries
        result = snap.refresh()
        assert result.attempts == 2
        assert result.retry_wait > 0
        assert snap.as_map() == truth(emp)
        assert snap.table.aborted_epochs == 1
        assert snap.table.snap_time == result.new_snap_time
        handle = manager.snapshot("s")
        assert handle.retries == 1

    def test_snap_time_unchanged_by_failed_attempts(self):
        link = FaultyLink()
        hq, emp, rids, manager, snap = build_world(
            link, retry_policy=RetryPolicy(max_attempts=4, jitter=0.0)
        )
        before = snap.snap_time
        emp.update(rids[0], {"v": 100})
        link.fail_at(1)
        snap.refresh()
        assert snap.snap_time > before  # advanced exactly once, at success

    def test_permanent_outage_exhausts_the_policy(self):
        link = FaultyLink(outages=[(0, 10**9)])
        hq, emp, rids, manager, snap = build_world(link, initial_refresh=False)
        with pytest.raises(RetryExhaustedError):
            manager.refresh("s", retry=RetryPolicy(max_attempts=3, jitter=0.0))
        assert manager.snapshot("s").retries >= 2

    def test_budget_exhaustion_stops_before_max_attempts(self):
        link = FaultyLink(outages=[(0, 10**9)])
        hq, emp, rids, manager, snap = build_world(link, initial_refresh=False)
        policy = RetryPolicy(
            max_attempts=50, base_delay=1.0, multiplier=2.0,
            jitter=0.0, budget=5.0,
        )
        with pytest.raises(RetryExhaustedError, match="budget"):
            manager.refresh("s", retry=policy)
        # 1 + 2, then the third delay (4) is clamped to the remaining 2.0
        # instead of overshooting — the budget is spent exactly, never
        # exceeded, and the next attempt finds nothing left and gives up.
        assert policy.total_waited == 5.0

    def test_final_delay_clamped_to_remaining_budget(self):
        link = FaultyLink(outages=[(0, 10**9)])
        hq, emp, rids, manager, snap = build_world(link, initial_refresh=False)
        slept = []
        policy = RetryPolicy(
            max_attempts=50, base_delay=2.0, multiplier=2.0,
            jitter=0.0, budget=7.0, sleeper=slept.append,
        )
        with pytest.raises(RetryExhaustedError, match="budget"):
            manager.refresh("s", retry=policy)
        # Exact deterministic sequence: 2, 4, then 8 clamped to 1.0 left.
        assert slept == [2.0, 4.0, 1.0]
        assert policy.total_waited == 7.0

    def test_no_policy_means_failures_propagate(self):
        from repro.errors import LinkDownError

        link = FaultyLink()
        hq, emp, rids, manager, snap = build_world(link)
        emp.update(rids[0], {"v": 100})
        link.fail_at(0)
        with pytest.raises(LinkDownError):
            snap.refresh()
        snap.refresh()  # manual retry still converges
        assert snap.as_map() == truth(emp)

    def test_duplicate_delivery_converges_in_one_attempt(self):
        link = FaultyLink(duplicate_every=3)
        hq, emp, rids, manager, snap = build_world(
            link, retry_policy=RetryPolicy(max_attempts=3, jitter=0.0)
        )
        emp.update(rids[2], {"v": 200})
        emp.delete(rids[5])
        result = snap.refresh()
        assert result.attempts == 1  # dedup inside the epoch, no retry
        assert snap.as_map() == truth(emp)

    def test_dropped_commit_detected_and_retried(self):
        # A silent drop-every-Nth link can swallow the RefreshCommit
        # itself: nothing raises on the sender path, but the receiver
        # never applied.  The manager's ack check must catch it.
        link = FaultyLink()
        hq, emp, rids, manager, snap = build_world(
            link, retry_policy=RetryPolicy(max_attempts=4, jitter=0.0)
        )
        emp.update(rids[0], {"v": 100})
        # Refresh stream: Begin, entry, Commit — drop exactly the Commit.
        link.drop_every = link.attempts + 3
        result = snap.refresh()
        link.drop_every = None
        assert result.attempts == 2
        assert snap.as_map() == truth(emp)
        assert snap.table.committed_epochs >= 1
