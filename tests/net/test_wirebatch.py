"""Batch frame codec: truncation safety and batch/per-message parity.

The generated batch decoder and the per-message reference decoder must
both reject a frame truncated at *any* byte offset with a typed
:class:`~repro.errors.WireError` — never a bare ``IndexError`` /
``struct.error`` / ``UnicodeDecodeError`` escaping the codec — and
never silently return short or corrupted values.
"""

import pytest

from repro.core import messages as msg
from repro.errors import WireError
from repro.net.wire import (
    WireCodec,
    read_svarint,
    read_uvarint,
    write_svarint,
    write_uvarint,
)
from repro.net.wire import _decode_value, _encode_value
from repro.relation.row import Row, encode_row
from repro.relation.schema import Column, Schema
from repro.relation.types import (
    NULL,
    FloatType,
    IntType,
    RidType,
    StringType,
    TimestampType,
)
from repro.storage.rid import Rid


def value_schema() -> Schema:
    return Schema(
        [
            Column("id", IntType(), nullable=False),
            Column("name", StringType(), nullable=True),
            Column("score", FloatType(), nullable=True),
        ]
    )


def wide_schema() -> Schema:
    """More than eight columns, so the NULL bitmap spans two bytes."""
    columns = [Column(f"c{i}", IntType(), nullable=True) for i in range(9)]
    columns.append(Column("tail", StringType(), nullable=True))
    return Schema(columns)


def entry(schema: Schema, addr: Rid, prev: Rid, values) -> msg.EntryMessage:
    body = len(encode_row(schema, Row(list(values))))
    return msg.EntryMessage(addr, prev, tuple(values), body)


def same_stream(schema: Schema, left, right) -> bool:
    """Messages lack ``__eq__``; byte-compare their canonical encodings."""
    probe = WireCodec(schema, base_time=0)
    return (
        probe.encode_frame_per_message(left).data
        == probe.encode_frame_per_message(right).data
    )


def sample_messages(schema: Schema):
    width = len(schema)

    def row(i):
        values = [i] + [NULL] * (width - 1)
        if isinstance(schema.columns[1].ctype, StringType):
            values[1] = f"name-{i}"
        if width > 2 and isinstance(schema.columns[2].ctype, FloatType):
            values[2] = i * 1.5
        if isinstance(schema.columns[-1].ctype, StringType):
            values[-1] = "tail ✓ value"
        return tuple(values)

    prev = Rid.BEGIN
    out = [msg.RefreshBeginMessage(41)]
    for i in range(6):
        addr = Rid(i // 3, i % 3)
        out.append(entry(schema, addr, prev, row(i)))
        prev = addr
    out.append(msg.DeleteRangeMessage(Rid(0, 1), Rid(1, 0)))
    out.append(msg.EndOfScanMessage(prev))
    out.append(msg.SnapTimeMessage(97))
    out.append(msg.RefreshCommitMessage(97, len(out)))
    return out


class TestVarintTruncation:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**21, 2**63])
    def test_uvarint_truncated_at_every_offset(self, value):
        out = bytearray()
        write_uvarint(out, value)
        for cut in range(len(out)):
            with pytest.raises(WireError):
                read_uvarint(bytes(out[:cut]), 0)

    @pytest.mark.parametrize("value", [0, -1, 64, -65, 2**40, -(2**40)])
    def test_svarint_truncated_at_every_offset(self, value):
        out = bytearray()
        write_svarint(out, value)
        for cut in range(len(out)):
            with pytest.raises(WireError):
                read_svarint(bytes(out[:cut]), 0)


class TestValueTruncation:
    """_decode_value over every column type, cut at every byte offset."""

    CASES = [
        (IntType(), 0),
        (IntType(), -(2**40)),
        (StringType(), ""),
        (StringType(), "snapshot ✓ differential"),
        (FloatType(), 3.140625),
        (TimestampType(), NULL),
        (TimestampType(), 2**33),
        (RidType(), NULL),
        (RidType(), Rid.BEGIN),
        (RidType(), Rid(123456, 42)),
    ]

    @pytest.mark.parametrize("ctype,value", CASES)
    def test_round_trip_then_truncate(self, ctype, value):
        out = bytearray()
        _encode_value(out, ctype, value)
        decoded, end = _decode_value(ctype, bytes(out), 0)
        assert decoded == value
        assert end == len(out)
        for cut in range(len(out)):
            with pytest.raises(WireError):
                _decode_value(ctype, bytes(out[:cut]), 0)


@pytest.mark.parametrize("make_schema", [value_schema, wide_schema])
@pytest.mark.parametrize("compress", [False, True])
class TestFrameTruncation:
    """Whole frames cut at every byte offset, both decoders."""

    def test_batch_decoder_rejects_every_truncation(
        self, make_schema, compress
    ):
        schema = make_schema()
        codec = WireCodec(schema, compress=compress, base_time=7)
        frame = codec.encode_batch(sample_messages(schema))
        data = frame.data
        assert same_stream(
            schema,
            codec.decode_batch(data),
            codec.decode_frame_per_message(data),
        )
        for cut in range(len(data)):
            with pytest.raises(WireError):
                codec.decode_batch(data[:cut])

    def test_reference_decoder_rejects_every_truncation(
        self, make_schema, compress
    ):
        codec = WireCodec(make_schema(), compress=compress, base_time=7)
        frame = codec.encode_frame_per_message(sample_messages(make_schema()))
        data = frame.data
        for cut in range(len(data)):
            with pytest.raises(WireError):
                codec.decode_frame_per_message(data[:cut])


class TestFrameMalformations:
    def test_trailing_garbage_rejected(self):
        codec = WireCodec(value_schema())
        frame = codec.encode_batch(sample_messages(value_schema()))
        with pytest.raises(WireError):
            codec.decode_batch(frame.data + b"\x00")

    def test_unknown_tag_rejected(self):
        codec = WireCodec(value_schema())
        frame = codec.encode_batch([msg.SnapTimeMessage(5)])
        with pytest.raises(WireError):
            codec.decode_batch(frame.data[:-2] + b"\xee" + frame.data[-1:])

    def test_delta_mask_beyond_schema_rejected(self):
        schema = value_schema()
        codec = WireCodec(schema)
        delta = msg.UpdateDeltaMessage(Rid(0, 1), Rid.BEGIN, 0b1, (5,), 1)
        frame = codec.encode_batch([delta])
        # The mask is a uvarint right after the two addresses; widen it
        # past the 3-column schema and both decoders must refuse.
        payload = bytearray(frame.data)
        index = payload.index(0b1, 2)
        payload[index] = 0b1000
        for decode in (codec.decode_batch, codec.decode_frame_per_message):
            with pytest.raises(WireError):
                decode(bytes(payload))

    def test_bad_deflate_payload_rejected(self):
        codec = WireCodec(value_schema(), compress=True)
        frame = codec.encode_batch(sample_messages(value_schema()))
        if frame.data[0] & 0x1:
            with pytest.raises(WireError):
                codec.decode_batch(frame.data[:2] + b"not deflate")

    def test_empty_frame_rejected(self):
        codec = WireCodec(value_schema())
        with pytest.raises(WireError):
            codec.decode_batch(b"")


class TestBatchEncoderParity:
    def test_wide_schema_batch_matches_reference(self):
        schema = wide_schema()
        codec = WireCodec(schema, base_time=3)
        messages = sample_messages(schema)
        batch = codec.encode_batch(messages)
        reference = codec.encode_frame_per_message(messages)
        assert batch.data == reference.data
        assert same_stream(schema, codec.decode_batch(batch.data), messages)
