"""Every example script must run to completion (deliverable safety net)."""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

SCRIPTS = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_exist():
    assert len(SCRIPTS) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it did
