"""The sweep harness itself (small grids so the suite stays fast)."""

import pytest

from repro.bench.harness import traffic_sweep
from repro.workload.generator import WorkloadMix


@pytest.fixture(scope="module")
def cells():
    return traffic_sweep(
        [0.25], [0.1, 0.5], n=400, seed=19, mix=WorkloadMix.updates_only()
    )


class TestSweep:
    def test_grid_shape(self, cells):
        assert len(cells) == 2
        assert cells[0].activity == 0.1
        assert cells[1].activity == 0.5

    def test_validation_ran(self, cells):
        # traffic_sweep(validate=True) raises on divergence; arriving
        # here means every algorithm converged to ground truth.
        assert all(cell.base_size > 0 for cell in cells)

    def test_ordering_holds(self, cells):
        for cell in cells:
            assert cell.entries["ideal"] <= cell.entries["differential"]
            assert cell.entries["differential"] <= cell.entries["full"] + 1

    def test_percent_helpers(self, cells):
        cell = cells[0]
        assert cell.percent("full") == pytest.approx(
            100.0 * cell.entries["full"] / cell.base_size
        )
        assert cell.model_percent("full") == pytest.approx(25.0, abs=2.0)

    def test_more_activity_more_differential_traffic(self, cells):
        assert (
            cells[1].entries["differential"] >= cells[0].entries["differential"]
        )

    def test_mixed_workload_still_validates(self):
        traffic_sweep(
            [0.25], [0.3], n=300, seed=23,
            mix=WorkloadMix.churn(), preserve_qualification=False,
        )

    def test_optimized_flags_still_validate(self):
        cells = traffic_sweep(
            [0.25], [0.3], n=300, seed=29,
            optimize_deletes=True, suppress_pure_inserts=True,
        )
        assert cells[0].entries["differential"] >= 0
