"""ASCII reporting helpers."""

from repro.bench.reporting import (
    ascii_table,
    format_percent,
    print_series,
    sweep_headers,
)


class TestAsciiTable:
    def test_alignment(self):
        text = ascii_table(["a", "long"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_header_rule(self):
        text = ascii_table(["x"], [[1]])
        assert "-" in text.splitlines()[1]


class TestFormatters:
    def test_format_percent(self):
        assert format_percent(12.3456) == "12.35%"
        assert format_percent(12.3456, digits=0) == "12%"

    def test_sweep_headers(self):
        headers = sweep_headers(("ideal", "full"))
        assert headers[:3] == ["q%", "u%", "touched%"]
        assert "model:full%" in headers

    def test_print_series(self, capsys):
        print_series("Demo", ["a"], [[1]])
        out = capsys.readouterr().out
        assert "== Demo ==" in out
        assert "1" in out
