"""The `python -m repro.bench` command-line harness."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_model_series(self, capsys):
        assert main(["model", "--q", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "Analytic traffic model" in out
        assert "diff%" in out

    def test_fig8_small(self, capsys):
        assert main(["fig8", "--n", "200", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "touched%" in out

    def test_fig9_small(self, capsys):
        assert main(["fig9", "--n", "400", "--seed", "3"]) == 0
        assert "Figure 9" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig10"])
