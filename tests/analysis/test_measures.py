"""Traffic measurement helpers."""

from repro.analysis.measures import (
    entry_messages,
    percent_of_base,
    superfluous_ratio,
)
from repro.net.channel import TrafficStats


class _Sized:
    def __init__(self, size):
        self._size = size

    def wire_size(self):
        return self._size


class TestPercentOfBase:
    def test_basic(self):
        assert percent_of_base(25, 100) == 25.0

    def test_empty_base(self):
        assert percent_of_base(5, 0) == 0.0


class TestSuperfluous:
    def test_basic(self):
        assert superfluous_ratio(10, 6) == 0.4

    def test_zero_differential(self):
        assert superfluous_ratio(0, 0) == 0.0

    def test_never_negative(self):
        assert superfluous_ratio(5, 9) == 0.0


class TestEntryMessages:
    def test_excludes_control_types(self):
        stats = TrafficStats()

        class EntryMessage(_Sized):
            pass

        class SnapTimeMessage(_Sized):
            pass

        class EndOfScanMessage(_Sized):
            pass

        stats.record(EntryMessage(10))
        stats.record(EntryMessage(10))
        stats.record(SnapTimeMessage(9))
        stats.record(EndOfScanMessage(17))
        assert entry_messages(stats) == 2
