"""The analytical traffic model: limits, monotonicity, paper claims."""

import math

import pytest

from repro.analysis.model import (
    TrafficModel,
    differential_fraction,
    distinct_touched_fraction,
    full_fraction,
    ideal_fraction,
)
from repro.errors import ReproError


class TestDistinctTouched:
    def test_zero_activity(self):
        assert distinct_touched_fraction(0.0) == 0.0

    def test_limit_form(self):
        assert distinct_touched_fraction(1.0) == pytest.approx(1 - math.exp(-1))

    def test_finite_n_close_to_limit(self):
        exact = distinct_touched_fraction(0.5, n=10_000)
        limit = distinct_touched_fraction(0.5)
        assert exact == pytest.approx(limit, rel=1e-3)

    def test_monotone_in_activity(self):
        values = [distinct_touched_fraction(u) for u in (0.1, 0.5, 1.0, 3.0)]
        assert values == sorted(values)

    def test_saturates_below_one(self):
        assert distinct_touched_fraction(10.0) < 1.0
        assert distinct_touched_fraction(10.0) > 0.9999

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            distinct_touched_fraction(-0.1)


class TestFractions:
    def test_full_is_selectivity(self):
        assert full_fraction(0.25) == 0.25

    def test_ideal_is_product(self):
        assert ideal_fraction(0.25, 0.4) == pytest.approx(0.1)

    def test_ordering_ideal_le_differential_le_full(self):
        for q in (0.01, 0.05, 0.25, 0.5, 0.75, 1.0):
            for d in (0.01, 0.1, 0.5, 0.9, 0.999):
                ideal = ideal_fraction(q, d)
                diff = differential_fraction(q, d)
                full = full_fraction(q)
                assert ideal <= diff + 1e-12
                assert diff <= full + 1e-12

    def test_no_restriction_differential_equals_ideal(self):
        # "When there is no restriction, the differential refresh
        # algorithm performs as well as the ideal refresh."
        for d in (0.05, 0.3, 0.8):
            assert differential_fraction(1.0, d) == pytest.approx(
                ideal_fraction(1.0, d)
            )

    def test_everything_changed_differential_equals_full(self):
        for q in (0.01, 0.25, 1.0):
            assert differential_fraction(q, 1.0) == pytest.approx(
                full_fraction(q)
            )

    def test_zero_change_sends_nothing(self):
        assert differential_fraction(0.5, 0.0) == 0.0
        assert ideal_fraction(0.5, 0.0) == 0.0

    def test_monotone_in_both_arguments(self):
        diffs_by_d = [differential_fraction(0.25, d) for d in (0.1, 0.3, 0.7)]
        assert diffs_by_d == sorted(diffs_by_d)
        diffs_by_q = [differential_fraction(q, 0.3) for q in (0.05, 0.25, 0.9)]
        assert diffs_by_q == sorted(diffs_by_q)

    def test_bounds_validation(self):
        with pytest.raises(ReproError):
            differential_fraction(1.5, 0.5)
        with pytest.raises(ReproError):
            ideal_fraction(0.5, -0.1)


class TestSuperfluousRatio:
    def test_decreases_with_activity(self):
        # "The percentage of superfluous messages decreases as the
        # number of base table modifications increases."
        model = TrafficModel(0.05)
        ratios = [model.superfluous_ratio(u) for u in (0.05, 0.2, 1.0, 3.0)]
        assert ratios == sorted(ratios, reverse=True)

    def test_increases_as_restriction_tightens(self):
        # "As the snapshot qualification becomes more restrictive, the
        # relative number of superfluous messages ... increases."
        at_u = 0.2
        ratios = [
            TrafficModel(q).superfluous_ratio(at_u) for q in (0.75, 0.25, 0.05, 0.01)
        ]
        assert ratios == sorted(ratios)

    def test_zero_when_unrestricted(self):
        assert TrafficModel(1.0).superfluous_ratio(0.5) == pytest.approx(0.0)


class TestTrafficModel:
    def test_at_activity_keys(self):
        point = TrafficModel(0.25, n=1000).at_activity(0.2)
        assert set(point) == {"distinct_fraction", "ideal", "differential", "full"}

    def test_series_shape(self):
        series = TrafficModel(0.25).series([0.1, 0.2])
        assert len(series) == 2
        assert series[0]["activity"] == 0.1

    def test_simulation_agreement(self):
        """The model predicts the simulator within a loose tolerance."""
        from repro.bench.harness import traffic_sweep
        from repro.workload.generator import WorkloadMix

        cells = traffic_sweep(
            [0.25],
            [0.2, 1.0],
            n=800,
            seed=13,
            mix=WorkloadMix.updates_only(),
        )
        for cell in cells:
            assert cell.percent("differential") == pytest.approx(
                cell.model_percent("differential"), rel=0.25, abs=1.0
            )
            assert cell.percent("ideal") == pytest.approx(
                cell.model_percent("ideal"), rel=0.3, abs=1.0
            )
