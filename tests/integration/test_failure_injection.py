"""Failure injection: aborts, link outages, log truncation, crash clock."""

import pytest

from repro.core.asap import AsapPropagator
from repro.core.manager import SnapshotManager
from repro.database import Database
from repro.errors import LinkDownError
from repro.expr.predicate import Projection, Restriction
from repro.net.channel import Link
from repro.txn.clock import RecoverableCounter


class TestAbortedTransactionsAndRefresh:
    def test_aborted_changes_never_reach_snapshot(self):
        hq = Database("hq")
        emp = hq.create_table("emp", [("name", "string"), ("salary", "int")])
        emp.bulk_load([[f"e{i}", i] for i in range(20)])
        manager = SnapshotManager(hq)
        snap = manager.create_snapshot(
            "low", "emp", where="salary < 10", method="differential"
        )
        baseline = snap.as_map()
        txn = hq.txns.begin()
        emp.insert(["phantom", 1], txn=txn)
        rids = [rid for rid, _ in emp.scan()]
        emp.update(rids[0], {"salary": 2}, txn=txn)
        txn.abort()
        result = snap.refresh()
        assert snap.as_map() == baseline

    def test_abort_after_annotation_touch_still_converges(self):
        # An aborted update leaves the row's timestamp NULL (the undo
        # restores the image, which had a NULL timestamp mid-flight is
        # restored to the *before* image) — refresh must stay exact.
        hq = Database("hq")
        emp = hq.create_table("emp", [("v", "int")], annotations="lazy")
        rids = [emp.insert([i]) for i in range(10)]
        manager = SnapshotManager(hq)
        snap = manager.create_snapshot(
            "s", "emp", where="v < 5", method="differential"
        )
        txn = hq.txns.begin()
        emp.update(rids[0], {"v": 100}, txn=txn)
        txn.abort()
        snap.refresh()
        truth = {
            rid: row.values
            for rid, row in emp.scan(visible=True)
            if row.values[0] < 5
        }
        assert snap.as_map() == truth


class TestLinkOutage:
    def test_asap_buffers_then_drains(self):
        hq = Database("hq")
        emp = hq.create_table("emp", [("v", "int")])
        rids = [emp.insert([i]) for i in range(10)]
        restriction = Restriction.parse("v < 100", emp.schema)
        projection = Projection(emp.schema)
        link = Link()
        from repro.core.snapshot import SnapshotTable

        snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
        for rid, row in emp.scan():
            snapshot._upsert(rid, row.values)
        link.attach(snapshot.receiver())
        propagator = AsapPropagator(emp, restriction, projection, link)
        link.go_down()
        for i, rid in enumerate(rids[:5]):
            emp.update(rid, {"v": 50 + i})
        assert propagator.buffered == 5
        assert len(snapshot) == 10  # stale but consistent
        link.come_up()
        propagator.try_flush()
        assert propagator.buffered == 0
        assert snapshot.as_map() == {
            rid: row.values for rid, row in emp.scan(visible=True)
        }

    def test_periodic_refresh_survives_outage_trivially(self):
        # The contrast with ASAP: a pull refresh simply runs later.
        hq = Database("hq")
        emp = hq.create_table("emp", [("v", "int")])
        rids = [emp.insert([i]) for i in range(10)]
        manager = SnapshotManager(hq)
        link = Link()
        snap = manager.create_snapshot(
            "s", "emp", method="differential", channel=link
        )
        link.go_down()
        emp.update(rids[0], {"v": 99})
        with pytest.raises(LinkDownError):
            snap.refresh()
        link.come_up()
        snap.refresh()
        assert snap.as_map() == {
            rid: row.values for rid, row in emp.scan(visible=True)
        }


class TestLogTruncation:
    def test_log_snapshot_degrades_to_full(self):
        hq = Database("hq", wal_capacity_bytes=2000)
        emp = hq.create_table("emp", [("v", "int")])
        for i in range(10):
            emp.insert([i])
        manager = SnapshotManager(hq)
        snap = manager.create_snapshot(
            "logged", "emp", where="v < 100", method="log"
        )
        # Blow the log capacity so the snapshot's LSN falls off the end.
        for i in range(200):
            emp.insert([i + 1000])
        result = snap.refresh()
        assert result.fell_back_full
        assert snap.as_map() == {
            rid: row.values
            for rid, row in emp.scan(visible=True)
            if row.values[0] < 100
        }


class TestCrashRecovery:
    def test_recoverable_clock_keeps_snapshots_safe(self, tmp_path):
        """After a simulated crash the clock never reissues a time, so a
        refresh after recovery cannot miss changes stamped before it."""
        path = str(tmp_path / "clock")
        clock = RecoverableCounter(path, lease=5)
        hq = Database("hq", clock=clock)
        emp = hq.create_table("emp", [("v", "int")], annotations="lazy")
        rids = [emp.insert([i]) for i in range(10)]
        manager = SnapshotManager(hq)
        snap = manager.create_snapshot("s", "emp", method="differential")
        snap_time = snap.snap_time

        # Crash: a new clock instance resumes beyond everything issued.
        recovered_clock = RecoverableCounter(path, lease=5)
        assert recovered_clock.read() >= snap_time
        hq.clock = recovered_clock
        emp.update(rids[0], {"v": 100})
        result = snap.refresh()
        assert result.new_snap_time > snap_time
        assert snap.as_map() == {
            rid: row.values for rid, row in emp.scan(visible=True)
        }
