"""End-to-end: the full CREATE/modify/REFRESH lifecycle across sites."""

import pytest

from repro.catalog.compiler import RefreshMethod
from repro.core.manager import SnapshotManager
from repro.database import Database
from repro.net.channel import Channel


@pytest.fixture
def world():
    hq = Database("hq")
    branch = Database("branch")
    emp = hq.create_table(
        "emp", [("name", "string"), ("salary", "int"), ("dept", "string")]
    )
    emp.bulk_load(
        [[f"emp{i}", (i * 7) % 40, f"d{i % 4}"] for i in range(200)]
    )
    return hq, branch, emp, SnapshotManager(hq)


class TestLifecycle:
    def test_create_modify_refresh_loop(self, world):
        hq, branch, emp, manager = world
        snap = manager.create_snapshot(
            "lowpaid",
            "emp",
            where="salary < 20",
            method="differential",
            target_db=branch,
        )
        for round_no in range(5):
            rids = [rid for rid, _ in emp.scan()]
            emp.update(rids[round_no], {"salary": round_no})
            emp.delete(rids[round_no + 10])
            emp.insert([f"new{round_no}", round_no * 3, "d0"])
            snap.refresh()
            truth = {
                rid: row.values
                for rid, row in emp.scan(visible=True)
                if row.values[1] < 20
            }
            assert snap.as_map() == truth

    def test_projection_and_restriction_together(self, world):
        hq, branch, emp, manager = world
        snap = manager.create_snapshot(
            "dept_names",
            "emp",
            where="dept = 'd1' AND salary < 30",
            columns=["name", "dept"],
            method="differential",
            target_db=branch,
        )
        rows = snap.rows()
        assert all(row.values[1] == "d1" for row in rows)
        assert all(len(row) == 2 for row in rows)
        rids = [rid for rid, _ in emp.scan()]
        emp.update(rids[1], {"dept": "d1", "salary": 5})
        snap.refresh()
        truth = {
            rid: (row.values[0], row.values[2])
            for rid, row in emp.scan(visible=True)
            if row.values[2] == "d1" and row.values[1] < 30
        }
        assert snap.as_map() == truth

    def test_snapshot_over_traffic_counting_channel(self, world):
        hq, branch, emp, manager = world
        channel = Channel("hq->branch")
        snap = manager.create_snapshot(
            "counted",
            "emp",
            where="salary < 20",
            method="differential",
            target_db=branch,
            channel=channel,
        )
        populate_messages = channel.stats.messages
        channel.stats.reset()
        rids = [rid for rid, _ in emp.scan()]
        emp.update(rids[0], {"salary": 1})
        snap.refresh()
        assert channel.stats.messages < populate_messages
        assert channel.stats.bytes > 0

    def test_differential_vs_full_traffic(self, world):
        """The paper's headline: differential ships a fraction of full."""
        hq, branch, emp, manager = world
        differential = manager.create_snapshot(
            "diff", "emp", where="salary < 20", method="differential"
        )
        full = manager.create_snapshot(
            "full", "emp", where="salary < 20", method="full"
        )
        rids = [rid for rid, _ in emp.scan()]
        for rid in rids[:5]:
            emp.update(rid, {"salary": 2})
        diff_result = differential.refresh()
        full_result = full.refresh()
        assert diff_result.entries_sent <= 10
        assert full_result.entries_sent >= 90
        assert differential.as_map() == full.as_map()


class TestMethodEquivalence:
    def test_all_methods_agree(self, world):
        hq, branch, emp, manager = world
        names = {}
        for method in ("differential", "full", "ideal", "log"):
            names[method] = manager.create_snapshot(
                f"snap_{method}", "emp", where="salary < 20", method=method
            )
        rids = [rid for rid, _ in emp.scan()]
        emp.update(rids[0], {"salary": 0})
        emp.delete(rids[1])
        emp.insert(["late", 3, "d2"])
        reference = None
        for method, snap in names.items():
            snap.refresh()
            contents = snap.as_map()
            if reference is None:
                reference = contents
            else:
                assert contents == reference, f"{method} diverged"

    def test_methods_report_their_kind(self, world):
        hq, branch, emp, manager = world
        snap = manager.create_snapshot("s", "emp", method="full")
        assert snap.method is RefreshMethod.FULL
