"""Join-defined snapshots: full re-evaluation only, per the paper."""

import pytest

from repro.catalog.compiler import JoinSpec, RefreshMethod
from repro.core.manager import SnapshotManager
from repro.database import Database
from repro.errors import RefreshMethodError


@pytest.fixture
def world():
    hq = Database("hq")
    emp = hq.create_table(
        "emp", [("name", "string"), ("dept_id", "int"), ("salary", "int")]
    )
    dept = hq.create_table("dept", [("dept_id", "int"), ("dept_name", "string")])
    dept.bulk_load([[1, "db"], [2, "os"], [3, "net"]])
    emp.bulk_load(
        [
            ["Bruce", 1, 15],
            ["Laura", 1, 6],
            ["Hamid", 2, 9],
            ["Mohan", 1, 9],
            ["Paul", 9, 8],  # dangling dept: no join partner
        ]
    )
    manager = SnapshotManager(hq)
    return hq, emp, dept, manager


JOIN = JoinSpec("dept", "dept_id", "dept_id", right_columns=["dept_name"])


class TestJoinSnapshot:
    def test_initial_contents(self, world):
        hq, emp, dept, manager = world
        snap = manager.create_snapshot(
            "emp_dept", "emp", where="salary < 10", join=JOIN
        )
        values = sorted(v for v in snap.as_map().values())
        assert values == [
            ("Hamid", 2, 9, "os"),
            ("Laura", 1, 6, "db"),
            ("Mohan", 1, 9, "db"),
        ]

    def test_combined_schema_names(self, world):
        hq, emp, dept, manager = world
        snap = manager.create_snapshot("j", "emp", join=JOIN)
        assert snap.table.value_schema.names == (
            "name", "dept_id", "salary", "dept_name",
        )

    def test_clashing_names_prefixed(self, world):
        hq, emp, dept, manager = world
        clash_join = JoinSpec("dept", "dept_id", "dept_id")  # both dept_id
        snap = manager.create_snapshot("c", "emp", join=clash_join)
        assert "dept_dept_id" in snap.table.value_schema.names

    def test_auto_collapses_to_full(self, world):
        hq, emp, dept, manager = world
        snap = manager.create_snapshot("j", "emp", method="auto", join=JOIN)
        assert snap.method is RefreshMethod.FULL

    @pytest.mark.parametrize("method", ["differential", "ideal", "log"])
    def test_incremental_methods_rejected(self, world, method):
        hq, emp, dept, manager = world
        with pytest.raises(RefreshMethodError):
            manager.create_snapshot("j", "emp", method=method, join=JOIN)

    def test_refresh_reevaluates(self, world):
        hq, emp, dept, manager = world
        snap = manager.create_snapshot(
            "emp_dept", "emp", where="salary < 10", join=JOIN
        )
        emp.insert(["Dale", 2, 5])
        dept_rids = {row.values[0]: rid for rid, row in dept.scan()}
        dept.update(dept_rids[1], {"dept_name": "data"})
        result = snap.refresh()
        values = sorted(v for v in snap.as_map().values())
        assert ("Dale", 2, 5, "os") in values
        assert ("Laura", 1, 6, "data") in values
        # Full re-evaluation: everything retransmitted.
        assert result.entries_sent == len(values)

    def test_one_to_many_join(self, world):
        hq, emp, dept, manager = world
        # Join dept to emp (right side has several matches per key).
        reverse = JoinSpec("emp", "dept_id", "dept_id", right_columns=["name"])
        snap = manager.create_snapshot("members", "dept", join=reverse)
        values = sorted(v for v in snap.as_map().values())
        assert values == [
            (1, "db", "Bruce"),
            (1, "db", "Laura"),
            (1, "db", "Mohan"),
            (2, "os", "Hamid"),
        ]

    def test_dangling_rows_excluded(self, world):
        hq, emp, dept, manager = world
        snap = manager.create_snapshot("j", "emp", join=JOIN)
        assert not any(v[0] == "Paul" for v in snap.as_map().values())

    def test_join_definition_sql(self, world):
        hq, emp, dept, manager = world
        snap = manager.create_snapshot("j", "emp", join=JOIN)
        text = snap.info.plan.definition.sql()
        assert "JOIN dept ON dept_id = dept.dept_id" in text
        # The definition records what was asked (AUTO); the compiled
        # plan records what was resolved (FULL).
        assert snap.info.plan.method is RefreshMethod.FULL

    def test_queryable_like_any_snapshot(self, world):
        hq, emp, dept, manager = world
        manager.create_snapshot("emp_dept", "emp", join=JOIN)
        result = hq.query(
            "SELECT dept_name, COUNT(*) AS n FROM emp_dept "
            "GROUP BY dept_name ORDER BY n DESC"
        )
        assert result.to_dicts()[0] == {"dept_name": "db", "n": 3}
