"""Multiple snapshots sharing one base table's annotations.

The paper: "multiple snapshots on a single base table do not require
additional annotations and much of the extra work is amortized over the
set of snapshots depending upon the base table."
"""

import pytest

from repro.core.manager import SnapshotManager
from repro.database import Database


@pytest.fixture
def world():
    hq = Database("hq")
    emp = hq.create_table("emp", [("name", "string"), ("salary", "int")])
    emp.bulk_load([[f"e{i}", i % 50] for i in range(150)])
    return hq, emp, SnapshotManager(hq)


def truth(emp, cutoff):
    return {
        rid: row.values
        for rid, row in emp.scan(visible=True)
        if row.values[1] < cutoff
    }


class TestSharedAnnotations:
    def test_many_snapshots_one_annotation_set(self, world):
        hq, emp, manager = world
        snaps = [
            manager.create_snapshot(
                f"s{i}", "emp", where=f"salary < {10 * (i + 1)}",
                method="differential",
            )
            for i in range(4)
        ]
        assert emp.schema.hidden_names() == ("$PREVADDR$", "$TIMESTAMP$")
        for index, snap in enumerate(snaps):
            assert snap.as_map() == truth(emp, 10 * (index + 1))

    def test_staggered_refresh_each_sees_all_changes(self, world):
        hq, emp, manager = world
        early = manager.create_snapshot(
            "early", "emp", where="salary < 25", method="differential"
        )
        late = manager.create_snapshot(
            "late", "emp", where="salary < 25", method="differential"
        )
        rids = [rid for rid, _ in emp.scan()]
        # Batch 1 — only `early` refreshes.
        emp.update(rids[0], {"salary": 1})
        emp.delete(rids[1])
        early.refresh()
        assert early.as_map() == truth(emp, 25)
        # Batch 2 — now `late` refreshes and must see batches 1 AND 2.
        emp.update(rids[2], {"salary": 2})
        late.refresh()
        assert late.as_map() == truth(emp, 25)
        # And `early` still catches batch 2.
        early.refresh()
        assert early.as_map() == truth(emp, 25)

    def test_fixup_amortization(self, world):
        hq, emp, manager = world
        first = manager.create_snapshot(
            "first", "emp", method="differential"
        )
        second = manager.create_snapshot(
            "second", "emp", method="differential"
        )
        third = manager.create_snapshot(
            "third", "emp", method="differential"
        )
        rids = [rid for rid, _ in emp.scan()]
        for rid in rids[:20]:
            emp.update(rid, {"salary": 3})
        results = [snap.refresh() for snap in (first, second, third)]
        assert results[0].fixup_writes == 20
        assert results[1].fixup_writes == 0
        assert results[2].fixup_writes == 0
        # All three transmitted the same (complete) change set.
        assert {r.entries_sent for r in results} == {20}

    def test_deletion_stamp_visible_to_stale_snapshot(self, world):
        # A refresh's fix-up stamps a deletion's successor with the
        # fix-up time; a snapshot that last refreshed *before* that time
        # must still detect the deletion later.
        hq, emp, manager = world
        fresh = manager.create_snapshot(
            "fresh", "emp", where="salary < 25", method="differential"
        )
        stale = manager.create_snapshot(
            "stale", "emp", where="salary < 25", method="differential"
        )
        victim = next(
            rid for rid, row in emp.scan(visible=True) if row.values[1] < 25
        )
        emp.delete(victim)
        fresh.refresh()  # performs the fix-up
        assert fresh.as_map() == truth(emp, 25)
        stale.refresh()  # must also drop the victim
        assert stale.as_map() == truth(emp, 25)

    def test_mixed_methods_coexist(self, world):
        hq, emp, manager = world
        differential = manager.create_snapshot(
            "d", "emp", where="salary < 25", method="differential"
        )
        full = manager.create_snapshot(
            "f", "emp", where="salary < 25", method="full"
        )
        rids = [rid for rid, _ in emp.scan()]
        emp.update(rids[0], {"salary": 0})
        differential.refresh()
        full.refresh()
        assert differential.as_map() == full.as_map() == truth(emp, 25)

    def test_drop_one_leaves_others_working(self, world):
        hq, emp, manager = world
        keep = manager.create_snapshot("keep", "emp", method="differential")
        drop = manager.create_snapshot("drop", "emp", method="differential")
        manager.drop_snapshot("drop")
        emp.insert(["after", 7])
        keep.refresh()
        assert keep.as_map() == truth(emp, 10**9)
