"""Cascaded snapshots: "snapshots can serve as base tables for other
snapshots"."""

import pytest

from repro.core.manager import SnapshotManager
from repro.database import Database


@pytest.fixture
def chain():
    """HQ -> regional snapshot -> leaf snapshot (all differential)."""
    hq = Database("hq")
    regional = Database("regional")
    leaf = Database("leaf")
    emp = hq.create_table("emp", [("name", "string"), ("salary", "int")])
    emp.bulk_load([[f"e{i}", i % 30] for i in range(120)])
    hq_manager = SnapshotManager(hq)
    mid = hq_manager.create_snapshot(
        "mid", "emp", where="salary < 20", method="differential",
        target_db=regional,
    )
    regional_manager = SnapshotManager(regional)
    low = regional_manager.create_snapshot(
        "low", "mid", where="salary < 10", method="differential",
        target_db=leaf,
    )
    return hq, emp, mid, low


def truth_values(table_like_rows, cutoff):
    return sorted(v for v in table_like_rows if v[1] < cutoff)


class TestCascade:
    def test_initial_population_through_the_chain(self, chain):
        hq, emp, mid, low = chain
        assert len(mid.table) == 80
        assert len(low.table) == 40
        mid_rows = [row.values for row in mid.rows()]
        assert sorted(v for v in low.as_map().values()) == truth_values(
            mid_rows, 10
        )

    def test_changes_propagate_hop_by_hop(self, chain):
        hq, emp, mid, low = chain
        rids = [rid for rid, _ in emp.scan()]
        emp.update(rids[0], {"salary": 5})
        emp.update(rids[1], {"salary": 25})
        emp.delete(rids[2])
        emp.insert(["n1", 3])
        mid_result = mid.refresh()
        low_result = low.refresh()
        assert mid_result.entries_sent < 10
        assert low_result.entries_sent < 10
        base_truth = {
            rid: row.values for rid, row in emp.scan() if row.values[1] < 20
        }
        assert mid.as_map() == base_truth
        mid_rows = [row.values for row in mid.rows()]
        assert sorted(v for v in low.as_map().values()) == truth_values(
            mid_rows, 10
        )

    def test_leaf_stale_until_parent_refreshes(self, chain):
        hq, emp, mid, low = chain
        before = low.as_map()
        victim = next(
            rid for rid, row in emp.scan() if row.values[1] < 10
        )
        emp.delete(victim)
        # Refreshing only the leaf changes nothing: its base (the mid
        # snapshot) has not been refreshed yet.
        low.refresh()
        assert low.as_map() == before
        mid.refresh()
        low.refresh()
        assert len(low.as_map()) == len(before) - 1

    def test_repeated_rounds_converge(self, chain):
        import random

        hq, emp, mid, low = chain
        rng = random.Random(31)
        for _ in range(4):
            live = [rid for rid, _ in emp.scan()]
            for _ in range(15):
                roll = rng.random()
                if roll < 0.3 and len(live) > 10:
                    emp.delete(live.pop(rng.randrange(len(live))))
                elif roll < 0.7:
                    target = live[rng.randrange(len(live))]
                    new_rid = emp.update(target, {"salary": rng.randrange(30)})
                    if new_rid != target:
                        live[live.index(target)] = new_rid
                else:
                    live.append(emp.insert(["x", rng.randrange(30)]))
            mid.refresh()
            low.refresh()
            mid_rows = [row.values for row in mid.rows()]
            assert sorted(v for v in low.as_map().values()) == truth_values(
                mid_rows, 10
            )

    def test_three_level_chain(self):
        hq = Database("hq")
        emp = hq.create_table("emp", [("v", "int")])
        emp.bulk_load([[i] for i in range(100)])
        sites = [Database(f"s{i}") for i in range(3)]
        managers = [SnapshotManager(hq)]
        snaps = []
        parent_name = "emp"
        for level, site in enumerate(sites):
            snap = managers[-1].create_snapshot(
                f"level{level}", parent_name,
                where=f"v < {80 - 20 * level}",
                method="differential", target_db=site,
            )
            snaps.append(snap)
            managers.append(SnapshotManager(site))
            parent_name = f"level{level}"
        assert [len(s.table) for s in snaps] == [80, 60, 40]
        rids = [rid for rid, _ in emp.scan()]
        emp.update(rids[0], {"v": 1})
        for snap in snaps:
            snap.refresh()
        assert [len(s.table) for s in snaps] == [80, 60, 40]

    def test_snapshot_storage_visible_in_site_catalog(self, chain):
        hq, emp, mid, low = chain
        regional_db = mid.table.db
        assert regional_db.catalog.has_table("$SNAP$mid")
