"""File-backed storage and memory-pressure scenarios.

The engine's page discipline must hold when pages actually round-trip
through a file and when the buffer pool is far smaller than the table —
the regimes a 1986 base table lived in.
"""

import pytest

from repro.core.manager import SnapshotManager
from repro.database import Database
from repro.storage.pager import FilePager


class TestFileBackedDatabase:
    def test_full_pipeline_on_disk(self, tmp_path):
        pager = FilePager(str(tmp_path / "base.pages"), page_size=1024)
        db = Database("disk", pager=pager, buffer_capacity=4)
        table = db.create_table("t", [("v", "int")], annotations="lazy")
        rids = table.bulk_load([[i] for i in range(300)])
        manager = SnapshotManager(db)
        snap = manager.create_snapshot(
            "s", "t", where="v < 150", method="differential"
        )
        table.update(rids[0], {"v": 1})
        table.delete(rids[1])
        table.insert([2])
        result = snap.refresh()
        truth = {
            rid: row.values
            for rid, row in table.scan(visible=True)
            if row.values[0] < 150
        }
        assert snap.as_map() == truth
        db.pool.flush_all()
        pager.close()

    def test_contents_survive_reopen(self, tmp_path):
        path = str(tmp_path / "base.pages")
        pager = FilePager(path, page_size=1024)
        db = Database("disk", pager=pager, buffer_capacity=4)
        table = db.create_table("t", [("v", "int")])
        table.bulk_load([[i] for i in range(100)])
        heap_pages = list(table.heap._pages)
        db.pool.flush_all()
        pager.close()

        # Reopen the file and rebuild a heap view over the same pages.
        from repro.storage.buffer import BufferPool
        from repro.storage.heap import HeapFile
        from repro.relation.row import decode_row
        from repro.relation.schema import Schema

        reopened = FilePager(path, page_size=1024)
        pool = BufferPool(reopened, capacity=4)
        heap = HeapFile(pool, name="t")
        heap._pages = heap_pages
        heap._free_hint = [0] * len(heap_pages)
        schema = Schema.of(("v", "int"))
        values = [decode_row(schema, body).values[0] for _, body in heap.scan()]
        assert values == list(range(100))
        reopened.close()


class TestBufferPressure:
    def test_refresh_with_tiny_pool(self):
        # 3 frames against a ~20-page table: constant eviction.
        db = Database("tiny", buffer_capacity=3)
        table = db.create_table("t", [("v", "int")], annotations="lazy")
        rids = table.bulk_load([[i] for i in range(2000)])
        manager = SnapshotManager(db)
        snap = manager.create_snapshot(
            "s", "t", where="v < 1000", method="differential"
        )
        for rid in rids[::7]:
            table.update(rid, {"v": 5})
        snap.refresh()
        truth = {
            rid: row.values
            for rid, row in table.scan(visible=True)
            if row.values[0] < 1000
        }
        assert snap.as_map() == truth
        assert db.pool.stats.evictions > 0
        assert db.pool.stats.writebacks > 0

    def test_eager_table_under_pressure(self):
        db = Database("tiny", buffer_capacity=3)
        table = db.create_table("t", [("v", "int")], annotations="eager")
        rids = [table.insert([i]) for i in range(500)]
        for rid in rids[::5]:
            table.delete(rid)
        # Chain invariant must hold despite constant eviction.
        from repro.storage.rid import Rid

        previous = Rid.BEGIN
        for rid, _ in table.scan():
            prev, _ = table.annotations(rid)
            assert prev == previous
            previous = rid
