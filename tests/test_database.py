"""Database facade."""

import pytest

from repro.database import Database
from repro.errors import CatalogError
from repro.relation.schema import Schema


class TestTables:
    def test_create_and_lookup(self, db):
        table = db.create_table("emp", [("name", "string")])
        assert db.table("emp") is table
        assert db.has_table("emp")

    def test_schema_object_accepted(self, db):
        schema = Schema.of(("a", "int"),)
        table = db.create_table("t", schema)
        assert table.visible_schema == schema

    def test_duplicate_name_rejected(self, db):
        db.create_table("emp", [("a", "int")])
        with pytest.raises(CatalogError):
            db.create_table("emp", [("a", "int")])

    def test_drop(self, db):
        db.create_table("emp", [("a", "int")])
        db.drop_table("emp")
        assert not db.has_table("emp")

    def test_annotations_at_create(self, db):
        table = db.create_table("t", [("a", "int")], annotations="lazy")
        assert table.annotation_mode == "lazy"

    def test_tables_share_buffer_pool(self, db):
        t1 = db.create_table("t1", [("a", "int")])
        t2 = db.create_table("t2", [("a", "int")])
        r1 = t1.insert([1])
        r2 = t2.insert([2])
        # Same page numbering domain per heap, distinct physical pages.
        assert t1.read(r1).values == (1,)
        assert t2.read(r2).values == (2,)

    def test_insert_policy_passthrough(self, db):
        table = db.create_table("t", [("a", "int")], insert_policy="append")
        assert table.heap.insert_policy == "append"


class TestSites:
    def test_independent_databases(self):
        a = Database("a")
        b = Database("b")
        a.create_table("t", [("x", "int")])
        assert not b.has_table("t")
        assert a.clock is not b.clock
