"""The SQL statement layer (Session.execute)."""

import pytest

from repro.catalog.compiler import RefreshMethod
from repro.database import Database
from repro.errors import ParseError
from repro.relation.types import NULL
from repro.sql import Session


@pytest.fixture
def session():
    s = Session(Database("hq"))
    s.execute(
        "CREATE TABLE emp (name string NOT NULL, salary int, dept string NULL)"
    )
    s.execute(
        "INSERT INTO emp VALUES "
        "('Bruce', 15, 'db'), ('Laura', 6, 'db'), ('Hamid', 9, 'os'), "
        "('Paul', 8, NULL)"
    )
    return s


class TestDDL:
    def test_create_table(self, session):
        table = session.db.table("emp")
        assert table.visible_schema.names == ("name", "salary", "dept")
        assert table.schema.column("dept").nullable
        assert not table.schema.column("name").nullable

    def test_create_index(self, session):
        index = session.execute("CREATE INDEX ON emp (salary)")
        assert index.column == "salary"
        assert session.db.table("emp").index_on("salary") is index

    def test_drop_table(self, session):
        session.execute("CREATE TABLE temp (x int)")
        session.execute("DROP TABLE temp")
        assert not session.db.has_table("temp")

    def test_malformed_create(self, session):
        with pytest.raises(ParseError):
            session.execute("CREATE VIEW v AS SELECT 1")


class TestDML:
    def test_insert_count(self, session):
        assert session.execute("INSERT INTO emp VALUES ('Dale', 5, 'db')") == 1
        assert session.execute("SELECT COUNT(*) FROM emp").scalar() == 5

    def test_insert_null(self, session):
        session.execute("INSERT INTO emp VALUES ('X', 1, NULL)")
        row = session.execute("SELECT dept FROM emp WHERE name = 'X'")
        assert row.rows[0][0] is NULL

    def test_insert_negative_number(self, session):
        session.execute("CREATE TABLE nums (v int)")
        session.execute("INSERT INTO nums VALUES (-5)")
        assert session.execute("SELECT v FROM nums").scalar() == -5

    def test_update_with_where(self, session):
        affected = session.execute(
            "UPDATE emp SET salary = salary + 1 WHERE dept = 'db'"
        )
        assert affected == 2
        assert session.execute(
            "SELECT salary FROM emp WHERE name = 'Laura'"
        ).scalar() == 7

    def test_update_all_rows(self, session):
        assert session.execute("UPDATE emp SET salary = 0") == 4

    def test_update_multiple_assignments(self, session):
        session.execute(
            "UPDATE emp SET salary = 1, dept = 'x' WHERE name = 'Paul'"
        )
        result = session.execute(
            "SELECT salary, dept FROM emp WHERE name = 'Paul'"
        )
        assert result.rows[0].values == (1, "x")

    def test_delete_with_where(self, session):
        assert session.execute("DELETE FROM emp WHERE salary < 9") == 2
        assert session.execute("SELECT COUNT(*) FROM emp").scalar() == 2

    def test_delete_everything(self, session):
        assert session.execute("DELETE FROM emp") == 4

    def test_where_unknown_rows_untouched(self, session):
        # Paul's dept is NULL: dept='db' is UNKNOWN, so he is not updated.
        session.execute("UPDATE emp SET salary = 99 WHERE dept = 'db'")
        assert session.execute(
            "SELECT salary FROM emp WHERE name = 'Paul'"
        ).scalar() == 8


class TestSnapshotStatements:
    def test_create_refresh_drop(self, session):
        snapshot = session.execute(
            "CREATE SNAPSHOT lowpaid AS SELECT name, salary FROM emp "
            "WHERE salary < 10 REFRESH DIFFERENTIAL"
        )
        assert snapshot.method is RefreshMethod.DIFFERENTIAL
        assert len(snapshot.table) == 3
        session.execute("INSERT INTO emp VALUES ('Dale', 5, 'db')")
        result = session.execute("REFRESH SNAPSHOT lowpaid")
        assert result.entries_sent == 1
        assert session.execute(
            "SELECT COUNT(*) FROM lowpaid"
        ).scalar() == 4
        session.execute("DROP SNAPSHOT lowpaid")
        assert not session.db.catalog.has_snapshot("lowpaid")

    def test_create_snapshot_star(self, session):
        snapshot = session.execute(
            "CREATE SNAPSHOT all_emp AS SELECT * FROM emp REFRESH FULL"
        )
        assert len(snapshot.table) == 4
        assert snapshot.method is RefreshMethod.FULL

    def test_create_snapshot_at_site(self, session):
        branch = Database("branch")
        session.attach_site("branch", branch)
        snapshot = session.execute(
            "CREATE SNAPSHOT remote_copy AS SELECT * FROM emp "
            "REFRESH DIFFERENTIAL AT branch"
        )
        assert snapshot.table.db is branch
        assert branch.query("SELECT COUNT(*) FROM remote_copy").scalar() == 4

    def test_unknown_site_rejected(self, session):
        with pytest.raises(ParseError):
            session.execute(
                "CREATE SNAPSHOT s AS SELECT * FROM emp AT nowhere"
            )

    def test_aggregate_definition_rejected(self, session):
        with pytest.raises(ParseError):
            session.execute(
                "CREATE SNAPSHOT s AS SELECT COUNT(*) FROM emp"
            )

    def test_expression_select_list_rejected(self, session):
        with pytest.raises(ParseError):
            session.execute(
                "CREATE SNAPSHOT s AS SELECT salary * 2 FROM emp"
            )

    def test_unknown_method_rejected(self, session):
        with pytest.raises(ParseError):
            session.execute(
                "CREATE SNAPSHOT s AS SELECT * FROM emp REFRESH WEEKLY"
            )

    def test_definition_sql_roundtrip(self, session):
        snapshot = session.execute(
            "CREATE SNAPSHOT low AS SELECT name FROM emp "
            "WHERE salary < 10 REFRESH DIFFERENTIAL"
        )
        text = snapshot.info.plan.definition.sql()
        assert "CREATE SNAPSHOT low" in text
        assert "WHERE" in text


class TestSelectPassthrough:
    def test_select(self, session):
        result = session.execute(
            "SELECT name FROM emp WHERE salary < 10 ORDER BY salary"
        )
        assert result.column("name") == ["Laura", "Paul", "Hamid"]

    def test_unknown_statement(self, session):
        with pytest.raises(ParseError):
            session.execute("GRANT ALL TO someone")
