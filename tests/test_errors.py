"""The exception hierarchy: one catchable base, specific subclasses."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_storage_family(self):
        for cls in (
            errors.PageFullError,
            errors.PageFormatError,
            errors.RecordNotFoundError,
            errors.BufferPoolError,
        ):
            assert issubclass(cls, errors.StorageError)

    def test_expression_family(self):
        for cls in (errors.LexError, errors.ParseError, errors.EvaluationError):
            assert issubclass(cls, errors.ExpressionError)

    def test_log_truncated_is_wal_error(self):
        assert issubclass(errors.LogTruncatedError, errors.WalError)
        assert issubclass(errors.WalError, errors.TransactionError)

    def test_refresh_method_is_snapshot_error(self):
        assert issubclass(errors.RefreshMethodError, errors.SnapshotError)

    def test_one_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.LinkDownError("down")


class TestCompilerErrors:
    def test_join_without_right_table(self, db):
        from repro.catalog.compiler import (
            JoinSpec,
            SnapshotDefinition,
            compile_snapshot,
        )

        emp = db.create_table("emp", [("d", "int")])
        definition = SnapshotDefinition(
            "s", "emp", join=JoinSpec("dept", "d", "d")
        )
        with pytest.raises(errors.RefreshMethodError):
            compile_snapshot(definition, emp, right_table=None)

    def test_join_on_unknown_column(self, db):
        from repro.catalog.compiler import (
            JoinSpec,
            SnapshotDefinition,
            compile_snapshot,
        )

        emp = db.create_table("emp", [("d", "int")])
        dept = db.create_table("dept", [("d", "int")])
        definition = SnapshotDefinition(
            "s", "emp", join=JoinSpec("dept", "ghost", "d")
        )
        with pytest.raises(errors.SchemaError):
            compile_snapshot(definition, emp, right_table=dept)
