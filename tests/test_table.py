"""Table facade: schema views, annotation modes, operations."""

import pytest

from repro.errors import CatalogError, SchemaError
from repro.relation.types import NULL
from repro.storage.rid import Rid
from repro.table import PREVADDR, TIMESTAMP


@pytest.fixture
def plain(db):
    table = db.create_table("t", [("name", "string"), ("v", "int")])
    table.bulk_load([[f"r{i}", i] for i in range(10)])
    return table


@pytest.fixture
def lazy(db):
    table = db.create_table(
        "lazy_t", [("name", "string"), ("v", "int")], annotations="lazy"
    )
    table.bulk_load([[f"r{i}", i] for i in range(10)])
    return table


@pytest.fixture
def eager(db):
    table = db.create_table(
        "eager_t", [("name", "string"), ("v", "int")], annotations="eager"
    )
    for i in range(10):
        table.insert([f"r{i}", i])
    return table


class TestSchemaViews:
    def test_plain_table_has_no_hidden_columns(self, plain):
        assert plain.schema == plain.visible_schema
        assert not plain.has_annotations

    def test_annotated_schema_hides_extras(self, lazy):
        assert lazy.visible_schema.names == ("name", "v")
        assert PREVADDR in lazy.schema
        assert TIMESTAMP in lazy.schema

    def test_reserved_names_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table("bad", [(PREVADDR, "int")])

    def test_read_strips_hidden_by_default(self, lazy):
        rid = next(lazy.scan_rids()) if hasattr(lazy, "scan_rids") else next(
            r for r, _ in lazy.scan()
        )
        assert len(lazy.read(rid)) == 2
        assert len(lazy.read(rid, visible=False)) == 4


class TestEnableAnnotations:
    def test_enable_on_existing_rows(self, plain):
        plain.enable_annotations("lazy")
        for rid, _ in plain.scan():
            prev, ts = plain.annotations(rid)
            assert prev is NULL and ts is NULL

    def test_contents_preserved(self, plain):
        before = {row.values for _, row in plain.scan()}
        plain.enable_annotations("lazy")
        assert {row.values for _, row in plain.scan()} == before

    def test_idempotent_same_mode(self, lazy):
        lazy.enable_annotations("lazy")  # no-op

    def test_mode_switch_rejected(self, lazy):
        with pytest.raises(CatalogError):
            lazy.enable_annotations("eager")

    def test_unknown_mode_rejected(self, plain):
        with pytest.raises(CatalogError):
            plain.enable_annotations("sometimes")

    def test_annotations_on_plain_table_raise(self, plain):
        rid = next(r for r, _ in plain.scan())
        with pytest.raises(CatalogError):
            plain.annotations(rid)

    def test_enable_on_packed_pages_relocates_safely(self, db):
        table = db.create_table("packed", [("pad", "string")])
        table.bulk_load([["x" * 120] for _ in range(200)])
        table.enable_annotations("lazy")
        assert table.row_count == 200
        assert all(len(row) == 1 for _, row in table.scan())


class TestLazyOperations:
    def test_insert_leaves_nulls(self, lazy):
        rid = lazy.insert(["new", 99])
        prev, ts = lazy.annotations(rid)
        assert prev is NULL and ts is NULL

    def test_update_nulls_timestamp_only(self, lazy):
        rid = next(r for r, _ in lazy.scan())
        lazy.set_annotations(rid, prev=Rid.BEGIN, ts=42)
        lazy.update(rid, {"v": 1000})
        prev, ts = lazy.annotations(rid)
        assert prev == Rid.BEGIN  # untouched
        assert ts is NULL

    def test_delete_just_deletes(self, lazy):
        rids = [r for r, _ in lazy.scan()]
        lazy.delete(rids[3])
        assert not lazy.exists(rids[3])
        # No other row was touched.
        for rid in rids:
            if rid != rids[3]:
                prev, ts = lazy.annotations(rid)
                assert prev is NULL and ts is NULL

    def test_update_hidden_column_rejected(self, lazy):
        rid = next(r for r, _ in lazy.scan())
        with pytest.raises(SchemaError):
            lazy.update(rid, {TIMESTAMP: 5})

    def test_stats_counters(self, lazy):
        base = lazy.stats.modifications
        rid = lazy.insert(["a", 1])
        lazy.update(rid, {"v": 2})
        lazy.delete(rid)
        assert lazy.stats.modifications == base + 3


class TestEagerOperations:
    def test_chain_after_bootstrap(self, eager):
        rids = [r for r, _ in eager.scan()]
        prev, _ = eager.annotations(rids[0])
        assert prev == Rid.BEGIN
        for left, right in zip(rids, rids[1:]):
            prev, _ = eager.annotations(right)
            assert prev == left

    def test_delete_updates_successor(self, eager):
        rids = [r for r, _ in eager.scan()]
        _, ts_before = eager.annotations(rids[4])
        eager.delete(rids[3])
        prev, ts = eager.annotations(rids[4])
        assert prev == rids[2]
        assert ts > ts_before

    def test_delete_last_touches_nothing(self, eager):
        rids = [r for r, _ in eager.scan()]
        annotations = {r: eager.annotations(r) for r in rids[:-1]}
        eager.delete(rids[-1])
        assert {r: eager.annotations(r) for r in rids[:-1]} == annotations

    def test_insert_reuses_address_and_relinks(self, eager):
        rids = [r for r, _ in eager.scan()]
        eager.delete(rids[3])
        new = eager.insert(["reborn", 1])
        assert new == rids[3]  # first-fit reuse
        prev_new, ts_new = eager.annotations(new)
        assert prev_new == rids[2]
        assert ts_new > 0
        prev_next, _ = eager.annotations(rids[4])
        assert prev_next == new

    def test_insert_at_end_links_to_predecessor(self, eager):
        rids = [r for r, _ in eager.scan()]
        new = eager.insert(["tail", 1])
        if new > rids[-1]:
            prev, _ = eager.annotations(new)
            assert prev == rids[-1]

    def test_update_stamps_time(self, eager):
        rids = [r for r, _ in eager.scan()]
        _, before = eager.annotations(rids[0])
        eager.update(rids[0], {"v": 77})
        _, after = eager.annotations(rids[0])
        assert after > before

    def test_bulk_load_rejected(self, eager):
        with pytest.raises(CatalogError):
            eager.bulk_load([["x", 1]])


class TestRelocatingUpdate:
    def test_overflow_update_moves_row(self, db):
        table = db.create_table(
            "grow", [("pad", "string")], annotations="lazy"
        )
        rids = table.bulk_load([["x" * 1300] for _ in range(3)])
        # Growing one row by ~1400 bytes cannot fit a 4 KiB page that
        # already holds ~3.9 KiB: the update must relocate.
        new_rid = table.update(rids[1], {"pad": "y" * 2700})
        assert new_rid != rids[1]
        assert not table.exists(rids[1])
        assert table.read(new_rid).values == ("y" * 2700,)
        prev, ts = table.annotations(new_rid)
        assert prev is NULL and ts is NULL  # looks like a fresh insert

    def test_set_annotations_unknown_field(self, db):
        table = db.create_table("t2", [("v", "int")], annotations="lazy")
        rid = table.insert([1])
        with pytest.raises(SchemaError):
            table.set_annotations(rid, bogus=1)


class TestEstimateSelectivity:
    def test_clustered_values_not_skewed(self, db):
        """Stride sampling must see past a clustered prefix.

        1000 rows where only the first 100 match: a first-`sample`-rows
        estimate (the old behaviour) would report ~0.39 with sample=256;
        sampling across the whole address range reports ~0.1.
        """
        table = db.create_table("clustered", [("v", "int")])
        table.bulk_load([[1 if i < 100 else 0] for i in range(1000)])
        estimate = table.estimate_selectivity(lambda row: row[0] == 1)
        assert abs(estimate - 0.1) < 0.05

    def test_small_table_exact(self, db):
        table = db.create_table("small", [("v", "int")])
        table.bulk_load([[i] for i in range(10)])
        assert table.estimate_selectivity(lambda row: row[0] < 5) == 0.5

    def test_empty_table(self, db):
        table = db.create_table("empty", [("v", "int")])
        assert table.estimate_selectivity(lambda row: True) == 0.0
