"""Write-ahead log: append, scan, truncate, cull."""

import pytest

from repro.errors import LogTruncatedError, WalError
from repro.storage.rid import Rid
from repro.txn.wal import LogRecordType, WriteAheadLog


@pytest.fixture
def wal():
    return WriteAheadLog()


def _txn_ops(wal, txn_id, table, count):
    wal.append(txn_id, LogRecordType.BEGIN)
    for i in range(count):
        wal.append(
            txn_id,
            LogRecordType.UPDATE,
            table=table,
            rid=Rid(0, i),
            before=b"old",
            after=b"new",
        )
    wal.append(txn_id, LogRecordType.COMMIT)


class TestAppendScan:
    def test_lsns_monotone(self, wal):
        records = [wal.append(1, LogRecordType.BEGIN) for _ in range(5)]
        assert [r.lsn for r in records] == [1, 2, 3, 4, 5]
        assert wal.next_lsn == 6

    def test_scan_from(self, wal):
        _txn_ops(wal, 1, "emp", 3)
        assert [r.lsn for r in wal.scan(3)] == [3, 4, 5]

    def test_size_accounting(self, wal):
        record = wal.append(
            1, LogRecordType.INSERT, table="emp", rid=Rid(0, 0), after=b"12345"
        )
        assert record.encoded_size() > 5
        assert wal.size_bytes == sum(r.encoded_size() for r in wal.scan())

    def test_is_data(self, wal):
        begin = wal.append(1, LogRecordType.BEGIN)
        insert = wal.append(1, LogRecordType.INSERT, table="t", rid=Rid(0, 0))
        assert not begin.is_data()
        assert insert.is_data()


class TestTruncation:
    def test_truncate_before(self, wal):
        _txn_ops(wal, 1, "emp", 3)
        dropped = wal.truncate_before(4)
        assert dropped == 3
        assert wal.truncated_before == 4
        assert [r.lsn for r in wal.scan(4)] == [4, 5]

    def test_scan_into_truncated_raises(self, wal):
        _txn_ops(wal, 1, "emp", 3)
        wal.truncate_before(4)
        with pytest.raises(LogTruncatedError):
            list(wal.scan(2))

    def test_truncate_past_head_rejected(self, wal):
        with pytest.raises(WalError):
            wal.truncate_before(10)

    def test_capacity_auto_truncates(self):
        wal = WriteAheadLog(capacity_bytes=200)
        for i in range(50):
            wal.append(
                1, LogRecordType.UPDATE, table="t", rid=Rid(0, i),
                before=b"x" * 10, after=b"y" * 10,
            )
        assert wal.size_bytes <= 200
        assert wal.truncated_before > 1


class TestCull:
    def test_cull_filters_table_and_commit(self, wal):
        _txn_ops(wal, 1, "emp", 2)       # committed, emp
        _txn_ops(wal, 2, "dept", 2)      # committed, other table
        wal.append(3, LogRecordType.BEGIN)
        wal.append(
            3, LogRecordType.UPDATE, table="emp", rid=Rid(0, 9), after=b"z"
        )
        wal.append(3, LogRecordType.ABORT)  # aborted: must be excluded
        relevant, scanned = wal.cull("emp", from_lsn=1)
        assert scanned == len(wal)
        assert [r.rid for r in relevant] == [Rid(0, 0), Rid(0, 1)]

    def test_cull_from_midpoint(self, wal):
        _txn_ops(wal, 1, "emp", 2)
        midpoint = wal.next_lsn
        _txn_ops(wal, 2, "emp", 2)
        relevant, scanned = wal.cull("emp", from_lsn=midpoint)
        assert len(relevant) == 2
        assert scanned == 4  # BEGIN + 2 updates + COMMIT

    def test_committed_txns(self, wal):
        _txn_ops(wal, 7, "emp", 1)
        wal.append(8, LogRecordType.BEGIN)
        assert wal.committed_txns() == {7}
