"""Clocks: monotonicity and crash recovery."""

import pytest

from repro.errors import ReproError
from repro.txn.clock import LogicalClock, ManualClock, RecoverableCounter, WallClock


class TestLogicalClock:
    def test_tick_advances(self):
        clock = LogicalClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_read_does_not_advance(self):
        clock = LogicalClock(start=5)
        assert clock.read() == 5
        assert clock.read() == 5

    def test_ticks_are_distinct(self):
        clock = LogicalClock()
        values = [clock.tick() for _ in range(100)]
        assert len(set(values)) == 100
        assert values == sorted(values)

    def test_rejects_negative_start(self):
        with pytest.raises(ReproError):
            LogicalClock(start=-1)


class TestManualClock:
    def test_set_forward(self):
        clock = ManualClock()
        clock.set(429)
        assert clock.tick() == 430

    def test_set_backward_rejected(self):
        clock = ManualClock(start=10)
        with pytest.raises(ReproError):
            clock.set(5)

    def test_advance(self):
        clock = ManualClock()
        assert clock.advance(10) == 10
        with pytest.raises(ReproError):
            clock.advance(-1)


class TestWallClock:
    def test_tick_strictly_monotone(self):
        clock = WallClock()
        values = [clock.tick() for _ in range(1000)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_read_never_regresses(self):
        clock = WallClock()
        first = clock.tick()
        assert clock.read() >= first


class TestRecoverableCounter:
    def test_ticks_monotone(self, tmp_path):
        counter = RecoverableCounter(str(tmp_path / "ctr"), lease=10)
        values = [counter.tick() for _ in range(25)]
        assert values == sorted(values)
        assert len(set(values)) == 25

    def test_never_reissues_after_crash(self, tmp_path):
        path = str(tmp_path / "ctr")
        counter = RecoverableCounter(path, lease=10)
        issued = [counter.tick() for _ in range(7)]
        # Simulate a crash: a new instance reads only the persisted mark.
        recovered = RecoverableCounter(path, lease=10)
        assert recovered.tick() > max(issued)

    def test_read(self, tmp_path):
        counter = RecoverableCounter(str(tmp_path / "ctr"))
        counter.tick()
        assert counter.read() == 1

    def test_rejects_bad_lease(self, tmp_path):
        with pytest.raises(ReproError):
            RecoverableCounter(str(tmp_path / "ctr"), lease=0)
