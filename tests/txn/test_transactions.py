"""Transactions: commit, abort/undo, listeners, autocommit."""

import pytest

from repro.errors import TransactionError
from repro.txn.transactions import TxnStatus


@pytest.fixture
def table(db):
    t = db.create_table("t", [("v", "int")])
    t.bulk_load([[i] for i in range(5)])
    return t


class TestCommit:
    def test_explicit_commit(self, db, table):
        txn = db.txns.begin()
        rid = table.insert([99], txn=txn)
        txn.commit()
        assert txn.status is TxnStatus.COMMITTED
        assert table.read(rid).values == (99,)

    def test_double_commit_rejected(self, db):
        txn = db.txns.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_operations_after_commit_rejected(self, db, table):
        txn = db.txns.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            table.insert([1], txn=txn)

    def test_locks_released_on_commit(self, db, table):
        txn = db.txns.begin()
        table.insert([1], txn=txn)
        assert db.locks.locked_resources()
        txn.commit()
        assert not db.locks.locked_resources()


class TestAbort:
    def test_abort_insert(self, db, table):
        txn = db.txns.begin()
        rid = table.insert([99], txn=txn)
        txn.abort()
        assert not table.exists(rid)

    def test_abort_update_restores_value(self, db, table):
        rids = [r for r, _ in table.scan()]
        txn = db.txns.begin()
        table.update(rids[0], {"v": 1000}, txn=txn)
        txn.abort()
        assert table.read(rids[0]).values == (0,)

    def test_abort_delete_restores_at_same_address(self, db, table):
        rids = [r for r, _ in table.scan()]
        txn = db.txns.begin()
        table.delete(rids[2], txn=txn)
        txn.abort()
        assert table.exists(rids[2])
        assert table.read(rids[2]).values == (2,)

    def test_abort_multi_op_reverse_order(self, db, table):
        rids = [r for r, _ in table.scan()]
        before = {r: row.values for r, row in table.scan()}
        txn = db.txns.begin()
        table.update(rids[0], {"v": -1}, txn=txn)
        table.delete(rids[1], txn=txn)
        new = table.insert([77], txn=txn)
        table.update(new, {"v": 78}, txn=txn)
        txn.abort()
        assert {r: row.values for r, row in table.scan()} == before

    def test_abort_releases_locks(self, db, table):
        txn = db.txns.begin()
        table.insert([1], txn=txn)
        txn.abort()
        assert not db.locks.locked_resources()


class TestAutocommit:
    def test_success_commits(self, db):
        with db.txns.autocommit() as txn:
            pass
        assert txn.status is TxnStatus.COMMITTED

    def test_error_aborts(self, db, table):
        rid = None
        with pytest.raises(RuntimeError):
            with db.txns.autocommit() as txn:
                rid = table.insert([1], txn=txn)
                raise RuntimeError("boom")
        assert not table.exists(rid)

    def test_table_ops_default_to_autocommit(self, db, table):
        rid = table.insert([42])
        assert table.read(rid).values == (42,)
        assert not db.txns.active


class TestListeners:
    def test_commit_listener_sees_data_records(self, db, table):
        seen = []
        db.txns.on_commit(lambda txn: seen.extend(txn.data_records))
        table.insert([5])
        assert len(seen) == 1
        assert seen[0].table == "t"

    def test_listener_not_fired_on_abort(self, db, table):
        fired = []
        db.txns.on_commit(lambda txn: fired.append(txn))
        txn = db.txns.begin()
        table.insert([5], txn=txn)
        txn.abort()
        assert fired == []

    def test_remove_listener(self, db, table):
        fired = []
        listener = lambda txn: fired.append(txn)  # noqa: E731
        db.txns.on_commit(listener)
        db.txns.remove_commit_listener(listener)
        table.insert([5])
        assert fired == []
