"""Lock manager: compatibility matrix, upgrades, bulk release."""

import pytest

from repro.errors import LockTimeoutError, TransactionError
from repro.txn.locks import LockManager, LockMode, supremum


@pytest.fixture
def locks():
    return LockManager()


TABLE = ("table", "emp")


class TestCompatibility:
    def test_shared_locks_coexist(self, locks):
        locks.acquire("a", TABLE, LockMode.S)
        locks.acquire("b", TABLE, LockMode.S)
        assert set(locks.holders(TABLE)) == {"a", "b"}

    def test_intent_locks_coexist(self, locks):
        locks.acquire("a", TABLE, LockMode.IX)
        locks.acquire("b", TABLE, LockMode.IX)
        locks.acquire("c", TABLE, LockMode.IS)

    def test_x_excludes_everything(self, locks):
        locks.acquire("a", TABLE, LockMode.X)
        for mode in LockMode:
            with pytest.raises(LockTimeoutError):
                locks.acquire("b", TABLE, mode)

    def test_refresh_blocked_by_active_writer(self, locks):
        # A transaction holds IX (it is updating rows); refresh needs X.
        locks.acquire(("txn", 1), TABLE, LockMode.IX)
        with pytest.raises(LockTimeoutError):
            locks.acquire(("refresh", "snap"), TABLE, LockMode.X)

    def test_six_allows_only_is(self, locks):
        locks.acquire("a", TABLE, LockMode.SIX)
        locks.acquire("b", TABLE, LockMode.IS)
        with pytest.raises(LockTimeoutError):
            locks.acquire("c", TABLE, LockMode.IX)
        with pytest.raises(LockTimeoutError):
            locks.acquire("d", TABLE, LockMode.S)


class TestReentrancyAndUpgrade:
    def test_reentrant_same_mode(self, locks):
        locks.acquire("a", TABLE, LockMode.S)
        locks.acquire("a", TABLE, LockMode.S)
        assert locks.mode_held("a", TABLE) == LockMode.S

    def test_upgrade_s_to_x_alone(self, locks):
        locks.acquire("a", TABLE, LockMode.S)
        locks.acquire("a", TABLE, LockMode.X)
        assert locks.mode_held("a", TABLE) == LockMode.X

    def test_upgrade_blocked_by_other_holder(self, locks):
        locks.acquire("a", TABLE, LockMode.S)
        locks.acquire("b", TABLE, LockMode.S)
        with pytest.raises(LockTimeoutError):
            locks.acquire("a", TABLE, LockMode.X)

    def test_ix_plus_s_is_six(self, locks):
        locks.acquire("a", TABLE, LockMode.IX)
        locks.acquire("a", TABLE, LockMode.S)
        assert locks.mode_held("a", TABLE) == LockMode.SIX

    def test_supremum_table(self):
        assert supremum(LockMode.IS, LockMode.IX) == LockMode.IX
        assert supremum(LockMode.IX, LockMode.S) == LockMode.SIX
        assert supremum(LockMode.S, LockMode.S) == LockMode.S
        assert supremum(LockMode.SIX, LockMode.X) == LockMode.X


class TestRelease:
    def test_release(self, locks):
        locks.acquire("a", TABLE, LockMode.S)
        locks.release("a", TABLE)
        assert locks.mode_held("a", TABLE) is None
        locks.acquire("b", TABLE, LockMode.X)

    def test_release_unheld_raises(self, locks):
        with pytest.raises(TransactionError):
            locks.release("a", TABLE)

    def test_release_all(self, locks):
        locks.acquire("a", TABLE, LockMode.IX)
        locks.acquire("a", ("row", "emp", 1), LockMode.X)
        locks.acquire("a", ("row", "emp", 2), LockMode.X)
        assert locks.release_all("a") == 3
        assert locks.locked_resources() == []

    def test_locking_context_manager(self, locks):
        with locks.locking("a", TABLE, LockMode.X):
            assert locks.mode_held("a", TABLE) == LockMode.X
        assert locks.mode_held("a", TABLE) is None

    def test_locking_releases_on_error(self, locks):
        with pytest.raises(RuntimeError):
            with locks.locking("a", TABLE, LockMode.X):
                raise RuntimeError("boom")
        assert locks.mode_held("a", TABLE) is None
