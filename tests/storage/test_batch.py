"""PageBatch extraction, derived facts, and the buffer-pool batch cache."""

import pytest

from repro.errors import StorageError
from repro.expr.predicate import Restriction
from repro.relation.types import NULL
from repro.storage.batch import extract_page_batch
from repro.storage.rid import Rid


@pytest.fixture
def eager(db):
    table = db.create_table(
        "emp", [("id", "int"), ("sal", "int")], annotations="eager"
    )
    for i in range(40):
        table.insert([i, i % 7])
    return table


@pytest.fixture
def lazy(db):
    table = db.create_table("lz", [("v", "int")], annotations="lazy")
    for i in range(10):
        table.insert([i])
    return table


def get_batch(table, heap_page=0):
    result = table.heap.page_batch(heap_page, table.schema)
    assert result is not None
    return result


class TestExtraction:
    def test_arrays_mirror_page_entries(self, eager):
        batch, reused = get_batch(eager)
        assert not reused
        entries = eager.heap.page_entries(0)
        assert batch.count == len(entries)
        assert list(batch.slots) == [slot for slot, _ in entries]
        assert batch.bodies == [body for _, body in entries]
        assert batch.last_rid() == Rid(0, entries[-1][0])

    def test_annotation_columns_match_row_decode(self, eager):
        batch, _ = get_batch(eager)
        prev_pos = eager.schema.position("$PREVADDR$")
        ts_pos = eager.schema.position("$TIMESTAMP$")
        for index in range(batch.count):
            row = batch.row(index)
            assert row.values[ts_pos] == batch.ts[index]
            prev = row.values[prev_pos]
            assert prev is not NULL
            assert prev == Rid(batch.prev_pages[index], batch.prev_slots[index])

    def test_eager_page_facts(self, eager):
        batch, _ = get_batch(eager)
        assert not batch.has_nulls
        assert batch.chain_ok
        assert batch.first_prev == Rid.BEGIN
        assert batch.max_live_ts == max(batch.ts)

    def test_lazy_nulls_detected(self, lazy):
        batch, _ = get_batch(lazy)
        assert batch.has_nulls

    def test_deletion_breaks_chain(self, lazy):
        # Eager tables repair the successor's PrevAddr on delete, so a
        # broken chain needs lazy annotations: fix up, then delete.
        from repro.core.fixup import base_fixup

        base_fixup(lazy)
        rids = list(lazy.heap.scan_rids())
        victim = rids[3]
        lazy.delete(victim)
        batch, _ = get_batch(lazy, victim.page_no)
        assert not batch.has_nulls
        assert not batch.chain_ok

    def test_empty_page_batch(self, db):
        table = db.create_table("e", [("v", "int")], annotations="eager")
        rid = table.insert([1])
        table.delete(rid)
        batch, _ = get_batch(table, 0)
        assert batch.count == 0
        assert batch.last_rid() is None
        assert batch.first_prev is None
        assert not batch.has_nulls

    def test_short_record_rejected(self, db):
        table = db.create_table("s", [("v", "int")], annotations="eager")
        table.insert([1])
        heap = table.heap
        frame = heap.pool.pin(heap._physical(0))
        try:
            with pytest.raises(StorageError):
                # Lie about the record length: too short for the
                # 16-byte annotation tail plus a bitmap byte.
                import struct

                offset, _ = struct.unpack_from("<HH", frame, 12)
                struct.pack_into("<HH", frame, 12, offset, 16)
                extract_page_batch(0, frame, table.schema, 1)
        finally:
            heap.pool.unpin(heap._physical(0), dirty=False)


class TestDerivedCaches:
    def test_row_memoized_and_counted(self, eager):
        batch, _ = get_batch(eager)
        assert batch.materializations == 0
        first = batch.row(5)
        again = batch.row(5)
        assert first is again
        assert batch.materializations == 1

    def test_qualifying_matches_per_row(self, eager):
        batch, _ = get_batch(eager)
        restriction = Restriction.parse("sal < 3", eager.schema)
        qualified = list(batch.qualifying(restriction))
        expected = [
            index
            for index in range(batch.count)
            if restriction(batch.row(index))
        ]
        assert qualified == expected
        assert batch.qualifying(restriction) is batch.qualifying(restriction)

    def test_probe_values_memoized(self, eager):
        batch, _ = get_batch(eager)
        positions = (0, 1)
        values = batch.probe_values(positions)
        assert values is batch.probe_values(positions)
        assert values[7][:2] == batch.row(7).values[:2]


class TestBatchCache:
    def test_hit_takes_no_pin(self, eager):
        heap = eager.heap
        get_batch(eager)
        stats = heap.pool.stats
        hits, misses = stats.hits, stats.misses
        batch_hits = stats.batch_hits
        batch, reused = get_batch(eager)
        assert reused
        assert stats.batch_hits == batch_hits + 1
        assert (stats.hits, stats.misses) == (hits, misses)

    def test_any_write_invalidates(self, eager):
        batch, _ = get_batch(eager)
        eager.insert([99, 1])
        fresh, reused = get_batch(eager)
        assert not reused
        assert fresh is not batch
        assert fresh.count == batch.count + 1

    def test_eviction_bounds_cache(self, db):
        table = db.create_table("big", [("v", "int")], annotations="eager")
        for i in range(4000):
            table.insert([i])
        heap = table.heap
        assert heap.page_count > heap.pool.capacity
        for page_no in range(heap.page_count):
            heap.page_batch(page_no, table.schema)
        assert len(heap.pool._batches) <= heap.pool.capacity

    def test_no_summaries_no_batch(self, db):
        table = db.create_table("plain", [("v", "int")])
        table.insert([1])
        assert table.heap.summaries is None
        assert table.heap.page_batch(0, table.schema) is None
