"""RIDs: ordering, sentinels, encoding."""

from repro.storage.rid import Rid, rid_or_begin


class TestOrdering:
    def test_lexicographic(self):
        assert Rid(0, 5) < Rid(1, 0)
        assert Rid(1, 0) < Rid(1, 1)
        assert Rid(2, 0) > Rid(1, 9)
        assert Rid(1, 1) >= Rid(1, 1)
        assert Rid(1, 1) <= Rid(1, 1)

    def test_begin_precedes_everything(self):
        assert Rid.BEGIN < Rid(0, 0)
        assert Rid.BEGIN < Rid(1000, 0)

    def test_equality_and_hash(self):
        assert Rid(1, 2) == Rid(1, 2)
        assert Rid(1, 2) != Rid(1, 3)
        assert hash(Rid(1, 2)) == hash(Rid(1, 2))
        assert len({Rid(1, 2), Rid(1, 2), Rid(1, 3)}) == 2

    def test_key_is_sortable_tuple(self):
        rids = [Rid(1, 0), Rid(0, 3), Rid(0, 1)]
        assert sorted(rids, key=Rid.key) == [Rid(0, 1), Rid(0, 3), Rid(1, 0)]


class TestEncoding:
    def test_roundtrip(self):
        rid, offset = Rid.decode(Rid(7, 42).encode())
        assert rid == Rid(7, 42)
        assert offset == Rid.WIRE_SIZE

    def test_begin_roundtrip(self):
        rid, _ = Rid.decode(Rid.BEGIN.encode())
        assert rid == Rid.BEGIN

    def test_repr(self):
        assert repr(Rid.BEGIN) == "Rid.BEGIN"
        assert repr(Rid(1, 2)) == "Rid(1, 2)"


class TestHelpers:
    def test_rid_or_begin(self):
        assert rid_or_begin(None) == Rid.BEGIN
        assert rid_or_begin(Rid(1, 1)) == Rid(1, 1)
