"""Page stores: allocation, IO, bounds, file persistence."""

import pytest

from repro.errors import StorageError
from repro.storage.pager import FilePager, InMemoryPager


class TestInMemoryPager:
    def test_allocate_sequential(self):
        pager = InMemoryPager(page_size=256)
        assert pager.allocate() == 0
        assert pager.allocate() == 1
        assert pager.page_count == 2

    def test_new_pages_are_zeroed(self):
        pager = InMemoryPager(page_size=256)
        page_no = pager.allocate()
        assert pager.read_page(page_no) == bytearray(256)

    def test_write_read_roundtrip(self):
        pager = InMemoryPager(page_size=256)
        page_no = pager.allocate()
        image = bytes(range(256))
        pager.write_page(page_no, image)
        assert bytes(pager.read_page(page_no)) == image

    def test_read_returns_copy(self):
        pager = InMemoryPager(page_size=16)
        page_no = pager.allocate()
        copy = pager.read_page(page_no)
        copy[0] = 0xFF
        assert pager.read_page(page_no)[0] == 0

    def test_out_of_range_read(self):
        pager = InMemoryPager()
        with pytest.raises(StorageError):
            pager.read_page(0)

    def test_wrong_size_write(self):
        pager = InMemoryPager(page_size=256)
        page_no = pager.allocate()
        with pytest.raises(StorageError):
            pager.write_page(page_no, b"short")


class TestFilePager:
    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "data.pages")
        with FilePager(path, page_size=128) as pager:
            page_no = pager.allocate()
            pager.write_page(page_no, b"z" * 128)
        with FilePager(path, page_size=128) as reopened:
            assert reopened.page_count == 1
            assert bytes(reopened.read_page(0)) == b"z" * 128

    def test_rejects_ragged_file(self, tmp_path):
        path = tmp_path / "ragged.pages"
        path.write_bytes(b"x" * 100)
        with pytest.raises(StorageError):
            FilePager(str(path), page_size=128)

    def test_out_of_range(self, tmp_path):
        with FilePager(str(tmp_path / "p.pages"), page_size=64) as pager:
            with pytest.raises(StorageError):
                pager.read_page(0)
