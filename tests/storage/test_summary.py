"""Page summaries: incremental maintenance vs ground truth."""

import pytest

from repro.relation.types import NULL
from repro.storage.summary import PageSummaryMap
from repro.table import PREVADDR, TIMESTAMP


@pytest.fixture
def lazy(db):
    table = db.create_table("t", [("v", "int")], annotations="lazy")
    return table


def assert_matches_rebuild(table):
    """The incrementally maintained map must agree with a fresh rebuild.

    ``max_ts`` is allowed to over-estimate (deleted entries leave their
    stamp behind); everything else must be exact.
    """
    heap = table.heap
    fresh = PageSummaryMap(
        table.schema, table._prev_pos, table._ts_pos, table.db.clock.read
    )
    fresh.rebuild(heap)
    for page_no in range(heap.page_count):
        live = heap.summaries.get(page_no)
        truth = fresh.get(page_no)
        assert live is not None
        assert live.null_slots == truth.null_slots, f"page {page_no}"
        assert live.first_live_slot == truth.first_live_slot
        assert live.last_live_slot == truth.last_live_slot
        assert live.max_ts >= truth.max_ts


class TestMaintenance:
    def test_attached_on_enable(self, db):
        table = db.create_table("pre", [("v", "int")])
        table.bulk_load([[i] for i in range(5)])
        assert table.heap.summaries is None
        table.enable_annotations("lazy")
        summaries = table.heap.summaries
        assert summaries is not None
        summary = summaries.get(0)
        # Rewritten rows all carry NULL annotations: every slot is dirty.
        assert len(summary.null_slots) == 5
        assert summary.has_null_annotations
        assert summary.first_live_slot == 0
        assert summary.last_live_slot == 4

    def test_insert_marks_null_slots(self, lazy):
        rid = lazy.insert([1])
        summary = lazy.heap.summaries.get(rid.page_no)
        assert rid.slot_no in summary.null_slots
        assert not summary.skippable(snap_time=10**9)

    def test_fixup_write_clears_dirty_state(self, lazy):
        rid = lazy.insert([1])
        from repro.storage.rid import Rid

        lazy.set_annotations(rid, prev=Rid.BEGIN, ts=7)
        summary = lazy.heap.summaries.get(rid.page_no)
        assert rid.slot_no not in summary.null_slots
        assert summary.max_ts >= 7
        assert summary.skippable(snap_time=7)
        assert not summary.skippable(snap_time=6)

    def test_update_redirties(self, lazy):
        rid = lazy.insert([1])
        from repro.storage.rid import Rid

        lazy.set_annotations(rid, prev=Rid.BEGIN, ts=7)
        lazy.update(rid, {"v": 2})  # lazy update NULLs the timestamp
        summary = lazy.heap.summaries.get(rid.page_no)
        assert rid.slot_no in summary.null_slots

    def test_delete_is_structural(self, lazy):
        rids = [lazy.insert([i]) for i in range(3)]
        before = lazy.heap.summaries.get(0).structural_changed_at
        lazy.delete(rids[1])
        summary = lazy.heap.summaries.get(0)
        assert summary.structural_changed_at > before
        assert summary.structural_changed_at > lazy.db.clock.read()
        assert rids[1].slot_no not in summary.null_slots
        assert summary.first_live_slot == 0
        assert summary.last_live_slot == 2

    def test_delete_all_clears_bounds(self, lazy):
        rid = lazy.insert([1])
        lazy.delete(rid)
        summary = lazy.heap.summaries.get(rid.page_no)
        assert summary.first_live_rid is None
        assert summary.last_live_rid is None

    def test_page_version_bumps_on_every_write(self, lazy):
        rid = lazy.insert([1])
        summary = lazy.heap.summaries.get(rid.page_no)
        v0 = summary.page_version
        lazy.update(rid, {"v": 2})
        v1 = summary.page_version
        from repro.storage.rid import Rid

        lazy.set_annotations(rid, prev=Rid.BEGIN, ts=3)
        v2 = summary.page_version
        lazy.delete(rid)
        v3 = summary.page_version
        assert v0 < v1 < v2 < v3

    def test_matches_rebuild_after_mixed_operations(self, lazy):
        rids = [lazy.insert([i]) for i in range(50)]
        for i in range(0, 50, 7):
            lazy.delete(rids[i])
        for i in range(1, 50, 11):
            if i % 7:
                lazy.update(rids[i], {"v": 100 + i})
        for i in range(8):
            lazy.insert([200 + i])  # reuses freed slots
        assert_matches_rebuild(lazy)


class TestCompactSurvival:
    def test_summaries_survive_compaction(self, db):
        """Compaction moves bodies, not slots; summaries stay valid."""
        table = db.create_table("pad", [("pad", "string")], annotations="lazy")
        rids = table.bulk_load([["x" * 400] for _ in range(9)])
        table.delete(rids[2])
        table.delete(rids[5])
        # Shrink then grow rows: growth forces an in-page compact once
        # contiguous space runs out but holes remain reclaimable.
        for rid in (rids[0], rids[1], rids[3]):
            table.update(rid, {"pad": "y" * 50})
        for rid in (rids[4], rids[6], rids[7]):
            table.update(rid, {"pad": "z" * 700})
        assert_matches_rebuild(table)

    def test_multi_page_bounds(self, db):
        table = db.create_table("wide", [("pad", "string")], annotations="lazy")
        table.bulk_load([["p" * 900] for _ in range(12)])  # spans pages
        assert table.heap.page_count > 1
        assert_matches_rebuild(table)
        for page_no in range(table.heap.page_count):
            summary = table.heap.summaries.get(page_no)
            assert summary.first_live_rid.page_no == page_no


class TestEagerMode:
    def test_eager_writes_tracked(self, db):
        table = db.create_table("e", [("v", "int")], annotations="eager")
        rids = [table.insert([i]) for i in range(5)]
        summary = table.heap.summaries.get(0)
        # Eager maintenance leaves no NULL annotations behind.
        assert not summary.has_null_annotations
        assert summary.max_ts >= 5
        table.delete(rids[2])
        assert_matches_rebuild(table)
