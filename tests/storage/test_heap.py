"""Heap files: placement policy, ordered scans, address reuse."""

import pytest

from repro.errors import PageFullError, RecordNotFoundError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.pager import InMemoryPager


@pytest.fixture
def heap():
    pool = BufferPool(InMemoryPager(page_size=256), capacity=8)
    return HeapFile(pool, name="t")


class TestInsertRead:
    def test_roundtrip(self, heap):
        rid = heap.insert(b"record")
        assert heap.read(rid) == b"record"
        assert heap.exists(rid)
        assert heap.record_count == 1

    def test_grows_pages(self, heap):
        for i in range(50):
            heap.insert(bytes([i]) * 40)
        assert heap.page_count > 1
        assert heap.record_count == 50

    def test_read_missing_raises(self, heap):
        rid = heap.insert(b"x")
        heap.delete(rid)
        with pytest.raises(RecordNotFoundError):
            heap.read(rid)

    def test_unknown_policy_rejected(self, heap):
        with pytest.raises(StorageError):
            HeapFile(heap._pool, insert_policy="random")


class TestPlacement:
    def test_first_fit_reuses_lowest_address(self, heap):
        rids = [heap.insert(bytes([i]) * 30) for i in range(20)]
        heap.delete(rids[2])
        heap.delete(rids[10])
        reused = heap.insert(b"z" * 30)
        assert reused == rids[2]  # lowest freed address wins

    def test_append_policy_goes_to_end(self):
        pool = BufferPool(InMemoryPager(page_size=256), capacity=8)
        heap = HeapFile(pool, insert_policy="append")
        rids = [heap.insert(bytes([i]) * 30) for i in range(10)]
        heap.delete(rids[0])
        appended = heap.insert(b"z" * 30)
        assert appended > rids[-1] or appended.page_no >= rids[-1].page_no

    def test_insert_at_restores_address(self, heap):
        rid = heap.insert(b"victim")
        heap.delete(rid)
        heap.insert_at(rid, b"restored")
        assert heap.read(rid) == b"restored"

    def test_insert_at_occupied_raises(self, heap):
        rid = heap.insert(b"x")
        with pytest.raises(PageFullError):
            heap.insert_at(rid, b"y")


class TestScan:
    def test_scan_in_address_order(self, heap):
        import random

        rng = random.Random(0)
        rids = [heap.insert(bytes([i % 250]) * 20) for i in range(60)]
        for rid in rng.sample(rids, 20):
            heap.delete(rid)
        scanned = [rid for rid, _ in heap.scan()]
        assert scanned == sorted(scanned, key=lambda r: r.key())
        assert len(scanned) == 40

    def test_scan_yields_bodies(self, heap):
        heap.insert(b"a")
        heap.insert(b"b")
        assert [body for _, body in heap.scan()] == [b"a", b"b"]

    def test_scan_allows_updates_to_yielded_records(self, heap):
        rids = [heap.insert(bytes([i]) * 10) for i in range(30)]
        seen = []
        for rid, body in heap.scan():
            heap.update(rid, b"U" * 10)  # same size, in place
            seen.append(rid)
        assert seen == rids
        assert all(heap.read(rid) == b"U" * 10 for rid in rids)

    def test_last_rid(self, heap):
        assert heap.last_rid() is None
        rids = [heap.insert(bytes([i]) * 10) for i in range(10)]
        assert heap.last_rid() == rids[-1]
        heap.delete(rids[-1])
        assert heap.last_rid() == rids[-2]

    def test_scan_rids(self, heap):
        rids = [heap.insert(b"x") for _ in range(3)]
        assert list(heap.scan_rids()) == rids


class TestUpdate:
    def test_update_in_place(self, heap):
        rid = heap.insert(b"aaaa")
        heap.update(rid, b"bbbb")
        assert heap.read(rid) == b"bbbb"

    def test_update_overflow_raises(self, heap):
        rid = heap.insert(b"a")
        with pytest.raises(PageFullError):
            heap.update(rid, b"x" * 500)
        assert heap.read(rid) == b"a"


class TestWriteCounters:
    def test_counts_by_kind(self, heap):
        rid = heap.insert(b"a")
        heap.update(rid, b"b")
        heap.delete(rid)
        heap.insert_at(rid, b"c")
        assert heap.writes.inserts == 2
        assert heap.writes.updates == 1
        assert heap.writes.deletes == 1
        assert heap.writes.total == 4

    def test_failed_update_not_counted(self, heap):
        rid = heap.insert(b"a")
        heap.writes.reset()
        with pytest.raises(PageFullError):
            heap.update(rid, b"x" * 500)
        assert heap.writes.updates == 0

    def test_reset(self, heap):
        heap.insert(b"a")
        heap.writes.reset()
        assert heap.writes.total == 0
