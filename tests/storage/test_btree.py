"""B+tree: ordered map semantics, range operations, structure."""

import random

import pytest

from repro.errors import StorageError
from repro.storage.btree import BPlusTree


@pytest.fixture
def tree():
    return BPlusTree(order=4)  # tiny order forces deep trees quickly


class TestBasics:
    def test_insert_get(self, tree):
        assert tree.insert(5, "five")
        assert tree.get(5) == "five"
        assert len(tree) == 1

    def test_insert_replace(self, tree):
        tree.insert(5, "a")
        assert not tree.insert(5, "b")  # not new
        assert tree.get(5) == "b"
        assert len(tree) == 1

    def test_get_default(self, tree):
        assert tree.get(9, default="missing") == "missing"

    def test_contains(self, tree):
        tree.insert(1, "x")
        assert 1 in tree
        assert 2 not in tree

    def test_delete(self, tree):
        tree.insert(1, "x")
        assert tree.delete(1)
        assert not tree.delete(1)
        assert len(tree) == 0

    def test_min_max(self, tree):
        assert tree.min_key() is None
        for key in (5, 1, 9, 3):
            tree.insert(key, key)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_order_validation(self):
        with pytest.raises(StorageError):
            BPlusTree(order=2)


class TestSplitsAndMerges:
    def test_many_inserts_stay_sorted(self, tree):
        keys = list(range(200))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 2)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(200))

    def test_delete_everything(self, tree):
        for key in range(100):
            tree.insert(key, key)
        for key in range(100):
            assert tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_alternating_workload(self, tree):
        rng = random.Random(42)
        reference = {}
        for _ in range(2000):
            key = rng.randrange(300)
            if rng.random() < 0.6:
                tree.insert(key, key)
                reference[key] = key
            else:
                tree.delete(key)
                reference.pop(key, None)
        tree.check_invariants()
        assert dict(tree.items()) == reference


class TestRange:
    @pytest.fixture
    def populated(self, tree):
        for key in range(0, 100, 2):  # evens 0..98
            tree.insert(key, key)
        return tree

    def test_half_open_default(self, populated):
        keys = [k for k, _ in populated.range(10, 20)]
        assert keys == [10, 12, 14, 16, 18]

    def test_inclusive_hi(self, populated):
        keys = [k for k, _ in populated.range(10, 20, include_hi=True)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_exclusive_lo(self, populated):
        keys = [k for k, _ in populated.range(10, 20, include_lo=False)]
        assert keys == [12, 14, 16, 18]

    def test_open_ended(self, populated):
        assert [k for k, _ in populated.range(lo=94)] == [94, 96, 98]
        assert [k for k, _ in populated.range(hi=6)] == [0, 2, 4]

    def test_bounds_between_keys(self, populated):
        keys = [k for k, _ in populated.range(9, 15)]
        assert keys == [10, 12, 14]

    def test_delete_range_open_interval(self, populated):
        removed = populated.delete_range(10, 20, include_lo=False, include_hi=False)
        assert [k for k, _ in removed] == [12, 14, 16, 18]
        populated.check_invariants()
        assert 10 in populated and 20 in populated

    def test_floor_item(self, populated):
        assert populated.floor_item(11) == (10, 10)
        assert populated.floor_item(10) == (8, 8)  # strict
        assert populated.floor_item(0) is None
        assert populated.floor_item(1000) == (98, 98)

    def test_floor_item_deep_tree(self):
        tree = BPlusTree(order=4)
        for key in range(1000):
            tree.insert(key, key)
        for probe in (1, 63, 64, 65, 500, 999):
            assert tree.floor_item(probe) == (probe - 1, probe - 1)


class TestTupleKeys:
    def test_rid_like_keys(self, tree):
        keys = [(p, s) for p in range(10) for s in range(10)]
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        in_range = [k for k, _ in tree.range((2, 5), (4, 1), include_lo=False)]
        expected = sorted(k for k in keys if (2, 5) < k < (4, 1))
        assert in_range == expected
