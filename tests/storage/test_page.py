"""Slotted pages: insert/read/update/delete, compaction, slot reuse."""

import pytest

from repro.errors import PageFormatError, PageFullError, RecordNotFoundError
from repro.storage.page import HEADER_SIZE, SLOT_SIZE, SlottedPage


@pytest.fixture
def page():
    return SlottedPage.empty(512)


class TestBasicOperations:
    def test_insert_and_read(self, page):
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"
        assert page.live_count == 1

    def test_sequential_slots(self, page):
        slots = [page.insert(bytes([i])) for i in range(5)]
        assert slots == [0, 1, 2, 3, 4]

    def test_read_empty_slot_raises(self, page):
        with pytest.raises(RecordNotFoundError):
            page.read(0)

    def test_read_out_of_range_raises(self, page):
        with pytest.raises(RecordNotFoundError):
            page.read(99)

    def test_delete_frees_slot(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        assert not page.is_live(slot)
        assert page.live_count == 0

    def test_delete_empty_raises(self, page):
        with pytest.raises(RecordNotFoundError):
            page.delete(0)

    def test_records_iterates_live_in_slot_order(self, page):
        page.insert(b"a")
        b = page.insert(b"b")
        page.insert(b"c")
        page.delete(b)
        assert list(page.records()) == [(0, b"a"), (2, b"c")]


class TestSlotReuse:
    def test_lowest_free_slot_reused(self, page):
        slots = [page.insert(bytes([i])) for i in range(4)]
        page.delete(slots[1])
        page.delete(slots[3])
        assert page.insert(b"new") == 1
        assert page.insert(b"new2") == 3

    def test_explicit_slot_insert(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        page.insert(b"y", slot_no=slot)
        assert page.read(slot) == b"y"

    def test_explicit_slot_occupied_raises(self, page):
        slot = page.insert(b"x")
        with pytest.raises(PageFullError):
            page.insert(b"y", slot_no=slot)

    def test_explicit_slot_extends_directory(self, page):
        page.insert(b"z", slot_no=3)
        assert page.slot_count == 4
        assert page.read(3) == b"z"
        assert not page.is_live(0)


class TestUpdate:
    def test_update_same_size_in_place(self, page):
        slot = page.insert(b"aaaa")
        page.update(slot, b"bbbb")
        assert page.read(slot) == b"bbbb"

    def test_update_shrink(self, page):
        slot = page.insert(b"aaaaaaaa")
        page.update(slot, b"bb")
        assert page.read(slot) == b"bb"

    def test_update_grow(self, page):
        slot = page.insert(b"aa")
        page.update(slot, b"b" * 50)
        assert page.read(slot) == b"b" * 50

    def test_update_grow_beyond_capacity_raises_and_restores(self, page):
        slot = page.insert(b"aa")
        with pytest.raises(PageFullError):
            page.update(slot, b"x" * 1000)
        assert page.read(slot) == b"aa"  # original still intact

    def test_update_empty_slot_raises(self, page):
        with pytest.raises(RecordNotFoundError):
            page.update(0, b"x")


class TestSpaceManagement:
    def test_page_full_raises(self, page):
        with pytest.raises(PageFullError):
            page.insert(b"x" * 1000)

    def test_compaction_reclaims_holes(self, page):
        usable = 512 - HEADER_SIZE
        chunk = b"x" * 60
        slots = []
        while page.free_for_insert(len(chunk), reuse_slot=False):
            slots.append(page.insert(chunk))
        # Free every other record, then insert something larger than any
        # single contiguous hole: compaction must make it fit.
        for slot in slots[::2]:
            page.delete(slot)
        big = b"y" * 100
        assert page.reclaimable() > 0
        new_slot = page.insert(big)
        assert page.read(new_slot) == big
        assert usable > 0

    def test_fill_and_drain_repeatedly(self, page):
        for round_no in range(5):
            slots = []
            body = bytes([round_no]) * 40
            while page.free_for_insert(len(body), reuse_slot=page.lowest_free_slot() is not None):
                slots.append(page.insert(body))
            for slot in slots:
                assert page.read(slot) == body
                page.delete(slot)
        assert page.live_count == 0


class TestFormat:
    def test_bad_magic_rejected(self):
        with pytest.raises(PageFormatError):
            SlottedPage(bytearray(512))

    def test_view_semantics(self):
        buf = bytearray(512)
        page = SlottedPage(buf, initialize=True)
        page.insert(b"shared")
        # A second view over the same buffer sees the record.
        view = SlottedPage(buf)
        assert view.read(0) == b"shared"

    def test_slot_size_constant(self):
        assert SLOT_SIZE == 4
