"""Buffer pool: pinning, LRU eviction, dirty write-back, stats."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.pager import InMemoryPager


@pytest.fixture
def pool():
    return BufferPool(InMemoryPager(page_size=64), capacity=3)


def _fill(pool, count):
    pages = [pool.allocate_page() for _ in range(count)]
    return pages


class TestPinning:
    def test_pin_returns_frame(self, pool):
        page_no = pool.allocate_page()
        frame = pool.pin(page_no)
        assert isinstance(frame, bytearray)
        pool.unpin(page_no)

    def test_unpin_unpinned_raises(self, pool):
        page_no = pool.allocate_page()
        with pytest.raises(BufferPoolError):
            pool.unpin(page_no)

    def test_repeated_pin_hits_cache(self, pool):
        page_no = pool.allocate_page()
        pool.pin(page_no)
        pool.unpin(page_no)
        pool.pin(page_no)
        pool.unpin(page_no)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_pinned_pages_reported(self, pool):
        page_no = pool.allocate_page()
        pool.pin(page_no)
        assert pool.pinned_pages() == [page_no]
        pool.unpin(page_no)
        assert pool.pinned_pages() == []


class TestEviction:
    def test_lru_eviction(self, pool):
        pages = _fill(pool, 4)
        for page_no in pages[:3]:
            pool.pin(page_no)
            pool.unpin(page_no)
        pool.pin(pages[3])  # evicts pages[0], the least recently used
        pool.unpin(pages[3])
        assert pool.stats.evictions == 1
        pool.pin(pages[0])  # must be a miss now
        pool.unpin(pages[0])
        assert pool.stats.misses == 5

    def test_dirty_page_written_back_on_eviction(self, pool):
        pages = _fill(pool, 4)
        frame = pool.pin(pages[0])
        frame[0] = 0xAB
        pool.unpin(pages[0], dirty=True)
        for page_no in pages[1:]:
            pool.pin(page_no)
            pool.unpin(page_no)
        assert pool.stats.writebacks == 1
        assert pool.pager.read_page(pages[0])[0] == 0xAB

    def test_pinned_pages_never_evicted(self, pool):
        pages = _fill(pool, 4)
        for page_no in pages[:3]:
            pool.pin(page_no)
        with pytest.raises(BufferPoolError):
            pool.pin(pages[3])

    def test_capacity_validation(self):
        with pytest.raises(BufferPoolError):
            BufferPool(InMemoryPager(), capacity=0)


class TestFlush:
    def test_flush_all_writes_dirty_frames(self, pool):
        page_no = pool.allocate_page()
        frame = pool.pin(page_no)
        frame[1] = 0x7F
        pool.unpin(page_no, dirty=True)
        pool.flush_all()
        assert pool.pager.read_page(page_no)[1] == 0x7F
        # A second flush has nothing left to write.
        before = pool.stats.writebacks
        pool.flush_all()
        assert pool.stats.writebacks == before

    def test_hit_rate(self, pool):
        page_no = pool.allocate_page()
        pool.pin(page_no)
        pool.unpin(page_no)
        pool.pin(page_no)
        pool.unpin(page_no)
        assert pool.stats.hit_rate == 0.5


class _FakeBatch:
    def __init__(self, version=1):
        self.version = version


class TestDiscard:
    def test_discard_pages_drops_frames_without_writeback(self, pool):
        pages = _fill(pool, 2)
        for page_no in pages:
            frame = pool.pin(page_no)
            frame[0] = 0xAB
            pool.unpin(page_no, dirty=True)
        writebacks_before = pool.stats.writebacks
        dropped = pool.discard_pages(pages)
        assert dropped == 2
        assert len(pool) == 0
        # Abandoned pages are never written back.
        assert pool.stats.writebacks == writebacks_before

    def test_discard_pages_also_drops_batches(self, pool):
        page_no = pool.allocate_page()
        pool.batch_store(page_no, _FakeBatch())
        assert pool.batch_entries() == 1
        pool.discard_pages([page_no])
        assert pool.batch_entries() == 0

    def test_discard_pinned_page_raises(self, pool):
        page_no = pool.allocate_page()
        pool.pin(page_no)
        with pytest.raises(BufferPoolError):
            pool.discard_pages([page_no])
        pool.unpin(page_no)

    def test_discard_batches_leaves_frames(self, pool):
        page_no = pool.allocate_page()
        frame = pool.pin(page_no)
        frame[0] = 0xCD
        pool.unpin(page_no, dirty=True)
        pool.batch_store(page_no, _FakeBatch())
        dropped = pool.discard_batches([page_no])
        assert dropped == 1
        assert pool.batch_entries() == 0
        # The dirty frame survives (truncate must not lose buffered writes).
        assert len(pool) == 1
        pool.flush_all()
        assert pool.pager.read_page(page_no)[0] == 0xCD

    def test_batch_cache_stays_within_capacity(self, pool):
        for _ in range(10):
            pool.batch_store(pool.allocate_page(), _FakeBatch())
        assert pool.batch_entries() <= pool.capacity
