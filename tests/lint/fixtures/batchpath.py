"""Fixture: per-field codec calls leaking into a batch-path module."""

import struct

out = bytearray()
write_uvarint(out, 7)  # noqa: F821
value, offset = read_svarint(b"\x03", 0)  # noqa: F821
struct.pack_into("<H", out, 0, 1)
packed = struct.pack("<q", 9)
decoded = _decode_value(None, b"\x05", 0)  # noqa: F821

SPAN = struct.Struct("<HH")
fields = SPAN.unpack_from(b"\x00\x00\x00\x00", 0)

cold = struct.unpack("<i", b"\x00\x00\x00\x00")  # replint: ignore[L305]
