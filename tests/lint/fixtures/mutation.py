"""Seeded L1 violations; linted with logical path ``core/rogue.py``."""


def rogue_annotation_write(table, rid):
    table.set_annotations(rid, prev=None, ts=7)  # line 5: L101


def rogue_summary_state(summary):
    summary.max_ts = 0  # line 9: L102
    summary.null_slots.add(3)  # line 10: L102


def rogue_hook_call(summaries, rid, body):
    summaries.note_insert(rid, body)  # line 14: L103


def waived_annotation_write(table, rid):
    table.set_annotations(rid, prev=None)  # replint: ignore[L101]
