"""Seeded L2 violations; linted with logical path ``core/jitter.py``."""

import random
import time
from datetime import datetime
from time import time_ns  # line 6: L201


def wall_clock():
    return time.time()  # line 10: L201


def wall_date():
    return datetime.now()  # line 14: L202


def unseeded_jitter():
    return random.random()  # line 18: L203


def seeded_is_fine(seed):
    return random.Random(seed).random()  # seeded generator: no violation
