"""Codec-parity fixture: one fully registered message, one orphan."""


class RefreshMessage:
    counts_as_entry = True

    def wire_size(self):
        raise NotImplementedError


class GoodMessage(RefreshMessage):
    def wire_size(self):
        return 1


class OrphanMessage(RefreshMessage):  # line 16: L301 + L302 + L303
    pass
