"""Codec-parity fixture: the codec side, with one tag too many."""

from codec.core import messages as msg

_TAG_GOOD = 1  # line 5: L304 (3 tags, 2 message classes)
_TAG_ORPHAN = 2
_TAG_EXTRA = 3


class WireCodec:
    def encode_into(self, message, out):
        if isinstance(message, msg.GoodMessage):
            out.append(_TAG_GOOD)

    def _decode_one(self, tag, payload):
        if tag == _TAG_GOOD:
            return msg.GoodMessage()
        return None
