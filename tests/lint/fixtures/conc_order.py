"""Seeded L602: a lock-order cycle only visible across functions.

``forward`` takes the table lock and calls ``touch_row``; ``backward``
takes a row lock and calls ``reacquire_table``.  No single function
inverts the order (per-site L401 stays silent) — the cycle exists only
in the global acquisition graph.
"""


def forward(locks, owner, name, rid, mode):
    locks.acquire(owner, ("table", name), mode)
    touch_row(locks, owner, name, rid, mode)
    locks.release_all(owner)


def touch_row(locks, owner, name, rid, mode):
    locks.acquire(owner, ("row", name, rid), mode)  # line 17: L602


def backward(locks, owner, name, rid, mode):
    locks.acquire(owner, ("row", name, rid), mode)
    reacquire_table(locks, owner, name, mode)
    locks.release_all(owner)


def reacquire_table(locks, owner, name, mode):
    locks.acquire(owner, ("table", name), mode)  # line 27: L602
