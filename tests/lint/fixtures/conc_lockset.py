"""Seeded L601: pool state mutated without the declared mutex.

``worker`` is submitted to a thread pool, so ``pin``/``pin_unlocked``
are reachable from two roots (``<main>`` and the worker).  ``pin``
holds the declared guard; ``pin_unlocked`` mutates the same fields
bare-handed.
"""

import threading
from concurrent.futures import ThreadPoolExecutor


class BufferStats:
    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0


class BufferPool:
    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._frames = {}
        self.stats = BufferStats()

    def pin(self, page_no: int) -> None:
        with self._mutex:
            self._frames[page_no] = page_no
            self.stats.hits += 1

    def pin_unlocked(self, page_no: int) -> None:
        self._frames[page_no] = page_no  # line 31: L601
        self.stats.misses += 1  # line 32: L601

    def pin_waived(self, page_no: int) -> None:
        # Benign by construction in this fixture; the suppression must
        # hold (and must not be reported stale, since L601 does fire).
        self.stats.misses += 1  # replint: ignore[L601]


def worker(pool: BufferPool) -> None:
    pool.pin(1)
    pool.pin_unlocked(2)
    pool.pin_waived(3)


def run(pool: BufferPool) -> None:
    with ThreadPoolExecutor(max_workers=1) as executor:
        executor.submit(worker, pool)
    worker(pool)
