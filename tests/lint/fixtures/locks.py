"""Seeded L4 violations; linted with logical path ``txn/rogue.py``."""


def inverted_order(locks, owner, name, rid, mode):
    locks.acquire(owner, ("row", name, rid), mode)
    locks.acquire(owner, ("table", name), mode)  # line 6: L401


def unknown_level(locks, owner, name, mode):
    locks.acquire(owner, ("partition", name), mode)  # line 10: L402


def correct_order(locks, owner, name, rid, mode):
    locks.acquire(owner, ("table", name), mode)
    locks.acquire(owner, ("row", name, rid), mode)
