"""Seeded L404 violations: registry code reaching into the manager."""
import repro.core.manager
from repro.core.scheduler import RefreshScheduler


def rogue_claim(db):
    manager = SnapshotManager(db)
    drain = manager.FleetDrainResult
    return manager, drain, RefreshScheduler


def clean_claim(registry, cohort):
    # Names in, outcomes back: no violation here.
    return registry.complete(cohort)
