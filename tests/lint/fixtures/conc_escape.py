"""Seeded L603: a worker-local cursor escapes to the shared registry.

Publication happens *under the registry lock*, so no L601 fires — the
escape is the defect: another root can observe the worker's private
cursor before the sequential merge.  ``merge`` builds the same cursor
on a main-only path and is clean.
"""

import threading
from concurrent.futures import ThreadPoolExecutor


class _ShardCursor:
    def __init__(self, shard_no: int) -> None:
        self.shard_no = shard_no
        self.rows = []


class SnapshotRegistry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._claims = {}


def scan_worker(registry: SnapshotRegistry, shard_no: int) -> list:
    cursor = _ShardCursor(shard_no)
    with registry._lock:
        registry._claims[shard_no] = cursor  # line 28: L603
    return cursor.rows


def merge(registry: SnapshotRegistry, shard_no: int) -> "_ShardCursor":
    cursor = _ShardCursor(shard_no)
    return cursor


def run(registry: SnapshotRegistry) -> None:
    with ThreadPoolExecutor(max_workers=1) as pool:
        pool.submit(scan_worker, registry, 0)
    merge(registry, 1)
