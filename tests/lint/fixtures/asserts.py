"""Seeded L5 violations; linted with logical path ``core/checks.py``."""


def protocol_check(value):
    assert value is not None  # line 5: L501
    return value


def waived_check(value):
    assert value is not None  # replint: ignore[L501]
    return value


def waived_everything(value):
    assert value is not None  # replint: ignore
    return value
