"""Seeded L403 violations: a shard worker reaching into the manager."""
import repro.core.manager
from repro.core.scheduler import RefreshScheduler


def rogue_worker(db):
    manager = SnapshotManager(db)
    entry = db.scheduler.ScheduleEntry
    return manager, entry, RefreshScheduler


def clean_worker(outcome):
    # Returned streams are the only channel: no violation here.
    return outcome.clones
