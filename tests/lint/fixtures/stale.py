"""Seeded L502: suppressions that no longer pull their weight."""


def waived_but_clean(flag):
    return bool(flag)  # replint: ignore[L501]


def waived_and_firing(flag):
    assert flag  # replint: ignore[L501]
    return flag


def blanket_on_nothing(flag):
    value = int(flag)  # replint: ignore
    return value
