"""Seeded L602 via chunk hooks: bare ``acquire()`` reenters the table
lock between chunks while a mutex is held, against a path that takes
the mutex under the table lock.
"""

import threading


class BufferPool:
    def __init__(self) -> None:
        self._mutex = threading.Lock()


def chunk_boundary(pool, acquire, release):
    with pool._mutex:
        release()
        acquire()  # line 17: L602 (table taken while mutex held)


def scan_chunk(locks, owner, name, mode, pool):
    locks.acquire(owner, ("table", name), mode)
    with pool._mutex:  # line 22: L602 (mutex taken while table held)
        pass
    locks.release_all(owner)
