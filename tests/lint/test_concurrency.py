"""L6 concurrency pass + L502 stale suppressions: fixtures, regression
on the real tree, guard-deletion sensitivity, CLI flags, and the timing
budget that keeps the whole-program pass in tier-1.
"""

import ast
import json
import os
import subprocess
import sys
import time

from repro.lint import lint_paths, lint_sources, load_source
from repro.lint.engine import SourceFile, collect_sources

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def fixture(name, logical):
    return load_source(os.path.join(FIXTURES, name), logical=logical)


def fired(violations):
    return [(v.rule, v.line) for v in violations]


class TestLocksetConsistency:
    def test_unguarded_multi_root_mutations_fire(self):
        violations = lint_sources(
            [fixture("conc_lockset.py", "storage/rogue.py")]
        )
        assert fired(violations) == [("L601", 31), ("L601", 32)]

    def test_justified_suppression_holds_and_is_not_stale(self):
        violations = lint_sources(
            [fixture("conc_lockset.py", "storage/rogue.py")]
        )
        # pin_waived's mutation is suppressed — and because L601 really
        # fires there, the suppression is live (no L502 either).
        assert all(v.line not in (37,) for v in violations)
        assert all(v.rule != "L502" for v in violations)


class TestLockOrderCycles:
    def test_cross_function_cycle_fires_where_l401_cannot(self):
        violations = lint_sources([fixture("conc_order.py", "txn/rogue.py")])
        # No single function inverts the order, so per-site L401 is
        # silent; the global graph still has table -> row -> table.
        assert fired(violations) == [("L602", 17), ("L602", 27)]

    def test_chunk_hook_reacquisition_edges(self):
        violations = lint_sources([fixture("conc_chunk.py", "core/rogue.py")])
        assert fired(violations) == [("L602", 17), ("L602", 22)]
        assert "buffer_mutex" in violations[0].message
        assert "table" in violations[0].message


class TestThreadEscape:
    def test_locked_publication_is_still_an_escape(self):
        violations = lint_sources([fixture("conc_escape.py", "core/rogue.py")])
        # The store happens under the registry lock (no L601) — the
        # escape of worker-local state is the defect.
        assert fired(violations) == [("L603", 28)]
        assert "_ShardCursor" in violations[0].message


class TestStaleSuppressions:
    def test_dead_named_and_blanket_suppressions_fire(self):
        violations = lint_sources([fixture("stale.py", "core/checks.py")])
        assert fired(violations) == [("L502", 5), ("L502", 14)]

    def test_filtered_runs_do_not_judge_unrun_rules(self):
        violations = lint_sources(
            [fixture("stale.py", "core/checks.py")], rules=["L6"]
        )
        assert violations == []

    def test_docstring_mention_is_not_a_suppression(self):
        text = (
            '"""Mentions # replint: ignore[L501] in prose only."""\n'
            "def f(flag):\n"
            "    assert flag\n"
        )
        source = SourceFile("doc.py", "core/doc.py", text, ast.parse(text))
        violations = lint_sources([source])
        assert fired(violations) == [("L501", 3)]


def _degraded_tree(logical, old, new):
    """The real src tree with ``old`` -> ``new`` applied to one module."""
    sources = collect_sources([SRC])
    out = []
    replaced = False
    for source in sources:
        if source.logical == logical:
            assert old in source.text, f"{old!r} not found in {logical}"
            text = source.text.replace(old, new)
            out.append(
                SourceFile(source.path, source.logical, text, ast.parse(text))
            )
            replaced = True
        else:
            out.append(source)
    assert replaced, logical
    return out


class TestRealTree:
    def test_src_is_l6xx_clean(self):
        assert lint_paths([SRC], rules=["L6"]) == []

    def test_src_has_no_stale_suppressions(self):
        assert [v for v in lint_paths([SRC]) if v.rule == "L502"] == []

    def test_deleting_registry_guard_fires_l601(self):
        violations = lint_sources(
            _degraded_tree("core/registry.py", "with self._lock:", "if True:"),
            rules=["L601"],
        )
        assert any(
            v.rule == "L601" and v.path.endswith("core/registry.py")
            for v in violations
        )

    def test_deleting_buffer_guard_fires_l601(self):
        violations = lint_sources(
            _degraded_tree("storage/buffer.py", "with self._mutex:", "if True:"),
            rules=["L601"],
        )
        assert any(
            v.rule == "L601" and v.path.endswith("storage/buffer.py")
            for v in violations
        )

    def test_whole_program_pass_meets_timing_budget(self):
        started = time.monotonic()
        lint_paths([SRC], rules=["L6"])
        elapsed = time.monotonic() - started
        assert elapsed < 10.0, f"concurrency pass took {elapsed:.2f}s"


def _cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


class TestCli:
    def test_list_rules(self):
        result = _cli("--list-rules")
        assert result.returncode == 0
        for rule in ("L101", "L502", "L601", "L602", "L603"):
            assert rule in result.stdout

    def test_list_rules_filtered_json(self):
        result = _cli("--list-rules", "--rules", "L6", "--json")
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert sorted(payload["rules"]) == ["L601", "L602", "L603"]

    def test_rules_filter_clean_tree_exit_zero(self):
        result = _cli("src", "--rules", "L6")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_rules_filter_dirty_fixture_exit_one(self):
        result = _cli(
            os.path.join("tests", "lint", "fixtures", "conc_chunk.py"),
            "--rules",
            "L6",
        )
        assert result.returncode == 1
        assert "L602" in result.stdout

    def test_json_output_and_budget_pass(self):
        result = _cli("src", "--rules", "L6", "--json", "--budget", "10")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["count"] == 0
        assert payload["violations"] == []
        assert payload["over_budget"] is False
        assert payload["elapsed_seconds"] < 10

    def test_budget_overrun_fails_even_when_clean(self):
        result = _cli("src", "--rules", "L6", "--budget", "0.000001")
        assert result.returncode == 1
        assert "over the" in result.stderr
