"""replint: each checker fires its exact rule IDs on seeded fixtures."""

import os
import subprocess
import sys

from repro.lint import RULES, lint_paths, lint_sources, load_source
from repro.lint.engine import collect_sources, logical_path

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def fixture(name, logical):
    return load_source(os.path.join(FIXTURES, name), logical=logical)


def fired(violations):
    return [(v.rule, v.line) for v in violations]


class TestMutationDiscipline:
    def test_rogue_writes_fire_exact_rules_and_lines(self):
        violations = lint_sources([fixture("mutation.py", "core/rogue.py")])
        assert fired(violations) == [
            ("L101", 5),
            ("L102", 9),
            ("L102", 10),
            ("L103", 14),
        ]

    def test_whitelisted_module_is_clean(self):
        violations = lint_sources([fixture("mutation.py", "core/fixup.py")])
        assert [v.rule for v in violations if v.rule == "L101"] == []


class TestDeterminism:
    def test_wall_clock_datetime_and_random_fire(self):
        violations = lint_sources([fixture("clock.py", "core/jitter.py")])
        assert fired(violations) == [
            ("L201", 6),
            ("L201", 10),
            ("L202", 14),
            ("L203", 18),
        ]

    def test_clock_module_is_exempt(self):
        violations = lint_sources([fixture("clock.py", "txn/clock.py")])
        assert violations == []

    def test_non_deterministic_dirs_are_exempt(self):
        violations = lint_sources([fixture("clock.py", "workload/gen.py")])
        assert violations == []


class TestCodecParity:
    def test_orphan_message_and_tag_mismatch(self):
        codec_root = os.path.join(FIXTURES, "codec")
        violations = lint_sources(
            collect_sources([codec_root], package_root=codec_root)
        )
        assert fired(violations) == [
            ("L301", 16),
            ("L302", 16),
            ("L303", 16),
            ("L304", 5),
        ]


class TestBatchPath:
    def test_per_field_calls_fire_in_batch_modules(self):
        violations = lint_sources(
            [fixture("batchpath.py", "net/wirebatch.py")]
        )
        assert fired(violations) == [
            ("L305", 6),
            ("L305", 7),
            ("L305", 8),
            ("L305", 9),
            ("L305", 10),
        ]

    def test_storage_batch_is_also_designated(self):
        violations = lint_sources(
            [fixture("batchpath.py", "storage/batch.py")]
        )
        assert [v.rule for v in violations] == ["L305"] * 5

    def test_other_modules_are_exempt(self):
        violations = lint_sources([fixture("batchpath.py", "net/wire.py")])
        # L305 does not apply outside batch modules — which makes the
        # fixture's cold-fallback suppression itself stale (L502).
        assert fired(violations) == [("L502", 15)]


class TestLockOrder:
    def test_inversion_and_unknown_level(self):
        violations = lint_sources([fixture("locks.py", "txn/rogue.py")])
        # The inverted pair (row -> table, line 6) against the correct
        # pair (table -> row, line 15) also forms a global acquisition
        # cycle, so the whole-program L602 fires at both edges.
        assert fired(violations) == [
            ("L401", 6),
            ("L602", 6),
            ("L402", 10),
            ("L602", 15),
        ]

    def test_per_site_rules_alone_match_the_old_behavior(self):
        violations = lint_sources(
            [fixture("locks.py", "txn/rogue.py")], rules=["L40"]
        )
        assert fired(violations) == [("L401", 6), ("L402", 10)]


class TestShardIsolation:
    def test_manager_references_fire_in_shard_module(self):
        violations = lint_sources(
            [fixture("shardiso.py", "core/shard.py")]
        )
        assert fired(violations) == [
            ("L403", 2),
            ("L403", 3),
            ("L403", 7),
            ("L403", 8),
            ("L403", 9),
        ]

    def test_other_modules_are_exempt(self):
        violations = lint_sources(
            [fixture("shardiso.py", "core/manager.py")]
        )
        assert [v.rule for v in violations] == []


class TestRegistryIsolation:
    def test_manager_references_fire_in_registry_modules(self):
        for logical in ("core/registry.py", "core/cohort.py"):
            violations = lint_sources([fixture("registryiso.py", logical)])
            assert fired(violations) == [
                ("L404", 2),
                ("L404", 3),
                ("L404", 7),
                ("L404", 8),
                ("L404", 9),
            ], logical

    def test_other_modules_are_exempt(self):
        violations = lint_sources(
            [fixture("registryiso.py", "core/manager.py")]
        )
        assert [v.rule for v in violations] == []


class TestBareAssert:
    def test_assert_fires_and_suppressions_hold(self):
        violations = lint_sources([fixture("asserts.py", "core/checks.py")])
        assert fired(violations) == [("L501", 5)]


class TestEngine:
    def test_logical_path_anchors_at_repro(self):
        assert logical_path("src/repro/core/fixup.py") == "core/fixup.py"
        assert logical_path("/a/b/repro/table.py") == "table.py"
        assert logical_path("elsewhere/module.py") == "module.py"

    def test_every_rule_id_is_documented(self):
        assert set(RULES) == {
            "L101", "L102", "L103",
            "L201", "L202", "L203",
            "L301", "L302", "L303", "L304", "L305",
            "L401", "L402", "L403", "L404",
            "L501", "L502",
            "L601", "L602", "L603",
        }

    def test_clean_tree_has_no_violations(self):
        assert lint_paths([os.path.join(REPO_ROOT, "src")]) == []

    def test_cli_exit_codes(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        clean = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        dirty = subprocess.run(
            [sys.executable, "-m", "repro.lint", FIXTURES],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert dirty.returncode == 1
        assert "L501" in dirty.stdout
