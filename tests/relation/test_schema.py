"""Schemas: construction, lookup, validation, hidden columns."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relation.schema import Column, Schema
from repro.relation.types import NULL, IntType


@pytest.fixture
def schema():
    return Schema.of(("name", "string"), ("salary", "int"), ("dept", "string", True))


class TestConstruction:
    def test_of_builds_columns(self, schema):
        assert schema.names == ("name", "salary", "dept")
        assert schema.column("salary").ctype == IntType()

    def test_nullable_flag_from_spec(self, schema):
        assert schema.column("dept").nullable
        assert not schema.column("name").nullable

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", "int"), ("a", "int"))

    def test_rejects_empty_column_name(self):
        with pytest.raises(SchemaError):
            Column("", "int")

    def test_column_type_by_name_string(self):
        column = Column("x", "float")
        assert column.ctype.name == "float"


class TestAccess:
    def test_position(self, schema):
        assert schema.position("salary") == 1

    def test_position_missing(self, schema):
        with pytest.raises(SchemaError):
            schema.position("bonus")

    def test_contains(self, schema):
        assert "name" in schema
        assert "bonus" not in schema

    def test_iteration_order(self, schema):
        assert [c.name for c in schema] == ["name", "salary", "dept"]

    def test_len(self, schema):
        assert len(schema) == 3

    def test_equality(self, schema):
        other = Schema.of(
            ("name", "string"), ("salary", "int"), ("dept", "string", True)
        )
        assert schema == other
        assert hash(schema) == hash(other)


class TestValidation:
    def test_accepts_valid_row(self, schema):
        schema.validate(["Laura", 6, "db"])

    def test_accepts_null_in_nullable(self, schema):
        schema.validate(["Laura", 6, NULL])

    def test_rejects_null_in_non_nullable(self, schema):
        with pytest.raises(SchemaError):
            schema.validate([NULL, 6, "db"])

    def test_rejects_arity_mismatch(self, schema):
        with pytest.raises(SchemaError):
            schema.validate(["Laura", 6])

    def test_rejects_type_mismatch(self, schema):
        with pytest.raises(TypeMismatchError):
            schema.validate(["Laura", "six", "db"])


class TestDerivedSchemas:
    def test_project(self, schema):
        projected = schema.project(["salary", "name"])
        assert projected.names == ("salary", "name")

    def test_visible_strips_hidden(self, schema):
        extended = schema.with_columns(
            [Column("$X$", "timestamp", nullable=True, hidden=True)]
        )
        assert extended.visible().names == schema.names
        assert extended.hidden_names() == ("$X$",)

    def test_with_columns_appends(self, schema):
        extended = schema.with_columns([Column("extra", "int")])
        assert extended.names[-1] == "extra"
        assert len(extended) == 4

    def test_with_columns_rejects_duplicate(self, schema):
        with pytest.raises(SchemaError):
            schema.with_columns([Column("name", "int")])
