"""Row values and byte encodings."""

import pytest

from repro.errors import SchemaError
from repro.relation.row import Row, decode_row, encode_row, encoded_size
from repro.relation.schema import Column, Schema
from repro.relation.types import NULL
from repro.storage.rid import Rid


@pytest.fixture
def schema():
    return Schema.of(("name", "string"), ("salary", "int"), ("dept", "string", True))


@pytest.fixture
def annotated_schema(schema):
    return schema.with_columns(
        [
            Column("$PREVADDR$", "rid", nullable=True, hidden=True),
            Column("$TIMESTAMP$", "timestamp", nullable=True, hidden=True),
        ]
    )


class TestRowValue:
    def test_sequence_protocol(self):
        row = Row(["a", 1])
        assert len(row) == 2
        assert list(row) == ["a", 1]
        assert row[1] == 1

    def test_equality_with_tuple(self):
        assert Row(["a", 1]) == ("a", 1)
        assert Row(["a", 1]) == Row(["a", 1])

    def test_hashable(self):
        assert hash(Row(["a", 1])) == hash(Row(["a", 1]))

    def test_get_by_name(self, schema):
        row = Row(["Laura", 6, NULL])
        assert row.get(schema, "salary") == 6

    def test_replace(self, schema):
        row = Row(["Laura", 6, NULL])
        updated = row.replace(schema, salary=7)
        assert updated.values == ("Laura", 7, NULL)
        assert row.values == ("Laura", 6, NULL)  # original untouched

    def test_project(self, schema):
        row = Row(["Laura", 6, "db"])
        assert row.project(schema, ["dept", "name"]).values == ("db", "Laura")


class TestEncoding:
    def test_roundtrip(self, schema):
        row = Row(["Laura", 6, "db"])
        assert decode_row(schema, encode_row(schema, row)) == row

    def test_roundtrip_with_null(self, schema):
        row = Row(["Laura", 6, NULL])
        decoded = decode_row(schema, encode_row(schema, row))
        assert decoded[2] is NULL

    def test_null_shrinks_encoding(self, schema):
        full = encoded_size(schema, Row(["Laura", 6, "engineering"]))
        with_null = encoded_size(schema, Row(["Laura", 6, NULL]))
        assert with_null < full

    def test_validates_before_encoding(self, schema):
        with pytest.raises(SchemaError):
            encode_row(schema, Row(["Laura", 6]))

    def test_rejects_truncated_image(self, schema):
        with pytest.raises(SchemaError):
            decode_row(schema, b"")

    def test_inline_null_keeps_size_constant(self, annotated_schema):
        base = ("Laura", 6, "db")
        with_nulls = encode_row(annotated_schema, Row(base + (NULL, NULL)))
        with_values = encode_row(
            annotated_schema, Row(base + (Rid(0, 1), 430))
        )
        assert len(with_nulls) == len(with_values)

    def test_annotated_roundtrip(self, annotated_schema):
        row = Row(("Laura", 6, NULL, Rid(2, 5), 430))
        decoded = decode_row(annotated_schema, encode_row(annotated_schema, row))
        assert decoded.values == ("Laura", 6, NULL, Rid(2, 5), 430)

    def test_many_columns_bitmap(self):
        # More than 8 columns exercises the multi-byte NULL bitmap.
        schema = Schema.of(*[(f"c{i}", "int", True) for i in range(12)])
        values = [i if i % 3 else NULL for i in range(12)]
        decoded = decode_row(schema, encode_row(schema, Row(values)))
        assert [v if v is not NULL else NULL for v in decoded.values] == values
