"""Column types: validation, encoding round trips, NULL sentinels."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relation.types import (
    NULL,
    FloatType,
    IntType,
    NullValue,
    RidType,
    StringType,
    TimestampType,
    type_for_name,
    type_for_tag,
)
from repro.storage.rid import Rid


class TestNullSingleton:
    def test_null_is_singleton(self):
        assert NullValue() is NULL

    def test_null_is_falsy(self):
        assert not NULL

    def test_null_repr(self):
        assert repr(NULL) == "NULL"

    def test_null_survives_pickling(self):
        import pickle

        assert pickle.loads(pickle.dumps(NULL)) is NULL


class TestIntType:
    def test_roundtrip(self):
        t = IntType()
        data = t.encode(-123456789)
        value, offset = t.decode(data, 0)
        assert value == -123456789
        assert offset == 8

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            IntType().validate(True)

    def test_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            IntType().validate(1.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(TypeMismatchError):
            IntType().validate(2**63)

    def test_accepts_boundaries(self):
        IntType().validate(2**63 - 1)
        IntType().validate(-(2**63))


class TestFloatType:
    def test_roundtrip(self):
        t = FloatType()
        value, _ = t.decode(t.encode(3.25), 0)
        assert value == 3.25

    def test_accepts_int(self):
        FloatType().validate(7)

    def test_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            FloatType().validate("x")


class TestStringType:
    def test_roundtrip(self):
        t = StringType()
        value, offset = t.decode(t.encode("héllo"), 0)
        assert value == "héllo"
        assert offset == 2 + len("héllo".encode("utf-8"))

    def test_empty_string(self):
        t = StringType()
        value, offset = t.decode(t.encode(""), 0)
        assert value == ""
        assert offset == 2

    def test_rejects_overlong(self):
        with pytest.raises(TypeMismatchError):
            StringType().validate("x" * 70000)

    def test_rejects_bytes(self):
        with pytest.raises(TypeMismatchError):
            StringType().validate(b"raw")


class TestRidType:
    def test_roundtrip(self):
        t = RidType()
        value, _ = t.decode(t.encode(Rid(3, 17)), 0)
        assert value == Rid(3, 17)

    def test_null_sentinel_roundtrip(self):
        t = RidType()
        value, offset = t.decode(t.encode(NULL), 0)
        assert value is NULL
        assert offset == 8

    def test_begin_is_not_null(self):
        t = RidType()
        value, _ = t.decode(t.encode(Rid.BEGIN), 0)
        assert value == Rid.BEGIN

    def test_fixed_width_regardless_of_null(self):
        t = RidType()
        assert len(t.encode(NULL)) == len(t.encode(Rid(0, 0)))

    def test_inline_null_flag(self):
        assert RidType().inline_null

    def test_rejects_non_rid(self):
        with pytest.raises(TypeMismatchError):
            RidType().validate((1, 2))


class TestTimestampType:
    def test_roundtrip(self):
        t = TimestampType()
        value, _ = t.decode(t.encode(430), 0)
        assert value == 430

    def test_null_sentinel_roundtrip(self):
        t = TimestampType()
        value, _ = t.decode(t.encode(NULL), 0)
        assert value is NULL

    def test_fixed_width_regardless_of_null(self):
        t = TimestampType()
        assert len(t.encode(NULL)) == len(t.encode(123))

    def test_rejects_negative(self):
        with pytest.raises(TypeMismatchError):
            TimestampType().validate(-1)


class TestRegistry:
    def test_lookup_by_name(self):
        assert type_for_name("int") == IntType()
        assert type_for_name("string") == StringType()
        assert type_for_name("rid") == RidType()

    def test_lookup_by_tag(self):
        assert type_for_tag(IntType.tag) == IntType()

    def test_unknown_name(self):
        with pytest.raises(SchemaError):
            type_for_name("varchar")

    def test_unknown_tag(self):
        with pytest.raises(SchemaError):
            type_for_tag(99)

    def test_equality_and_hash(self):
        assert IntType() == IntType()
        assert IntType() != FloatType()
        assert hash(IntType()) == hash(IntType())
