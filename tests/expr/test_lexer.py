"""Tokenizer behaviour."""

import pytest

from repro.errors import LexError
from repro.expr.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestTokens:
    def test_numbers(self):
        assert values("1 23 4.5 .5") == [1, 23, 4.5, 0.5]

    def test_strings(self):
        assert values("'hello' ''") == ["hello", ""]

    def test_string_escaped_quote(self):
        assert values("'it''s'") == ["it's"]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_keywords_case_insensitive(self):
        assert kinds("and OR Not") == ["AND", "OR", "NOT", "EOF"]

    def test_identifiers(self):
        assert values("salary dept_2 $TIMESTAMP$") == [
            "salary",
            "dept_2",
            "$TIMESTAMP$",
        ]

    def test_operators(self):
        assert values("< <= <> != = >= > + - * / % ( ) ,") == [
            "<", "<=", "<>", "!=", "=", ">=", ">", "+", "-", "*", "/", "%",
            "(", ")", ",",
        ]

    def test_offsets_recorded(self):
        tokens = tokenize("a < 10")
        assert [t.offset for t in tokens[:-1]] == [0, 2, 4]

    def test_unknown_char(self):
        with pytest.raises(LexError):
            tokenize("a ? b")

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind == "EOF"
        assert tokenize("x")[-1].kind == "EOF"
