"""Restriction and Projection objects."""

import pytest

from repro.errors import EvaluationError, SchemaError
from repro.expr.predicate import Projection, Restriction
from repro.relation.row import Row
from repro.relation.schema import Column, Schema
from repro.relation.types import NULL

SCHEMA = Schema.of(("name", "string"), ("salary", "int"))
ANNOTATED = SCHEMA.with_columns(
    [
        Column("$PREVADDR$", "rid", nullable=True, hidden=True),
        Column("$TIMESTAMP$", "timestamp", nullable=True, hidden=True),
    ]
)


class TestRestriction:
    def test_parse_and_call(self):
        restrict = Restriction.parse("salary < 10", SCHEMA)
        assert restrict(Row(["Laura", 6]))
        assert not restrict(Row(["Bruce", 15]))

    def test_accepts_plain_sequences(self):
        restrict = Restriction.parse("salary < 10", SCHEMA)
        assert restrict(("Laura", 6))

    def test_unknown_does_not_qualify(self):
        schema = Schema.of(("v", "int", True))
        restrict = Restriction.parse("v < 10", schema)
        assert not restrict(Row([NULL]))

    def test_true_restriction(self):
        restrict = Restriction.true(SCHEMA)
        assert restrict(Row(["anyone", 123]))
        assert restrict.text == "TRUE"

    def test_rejects_unknown_columns(self):
        with pytest.raises(EvaluationError):
            Restriction.parse("bonus > 0", SCHEMA)

    def test_rejects_hidden_columns(self):
        with pytest.raises(EvaluationError):
            Restriction.parse("$TIMESTAMP$ IS NULL", ANNOTATED)

    def test_works_over_annotated_rows(self):
        restrict = Restriction.parse("salary < 10", ANNOTATED)
        assert restrict(Row(["Laura", 6, NULL, NULL]))

    def test_text_roundtrip(self):
        restrict = Restriction.parse("salary < 10 AND name LIKE 'L%'", SCHEMA)
        again = Restriction.parse(restrict.text, SCHEMA)
        assert again(Row(["Laura", 6]))


class TestCanonicalization:
    """Reordered/respelled predicates collapse to one identity."""

    def setup_method(self):
        Restriction.clear_parse_cache()

    def test_reordered_conjuncts_share_text_and_object(self):
        a = Restriction.parse("salary < 10 AND name LIKE 'L%'", SCHEMA)
        b = Restriction.parse("name LIKE 'L%' AND salary < 10", SCHEMA)
        assert a.text == b.text
        assert a is b  # the memo aliases the second spelling

    def test_reordered_disjuncts_share_text(self):
        a = Restriction.parse("salary < 10 OR salary > 90", SCHEMA)
        b = Restriction.parse("salary > 90 OR salary < 10", SCHEMA)
        assert a.text == b.text

    def test_three_way_conjunct_permutations(self):
        texts = {
            Restriction.parse(t, SCHEMA).text
            for t in (
                "salary < 10 AND salary > 2 AND name LIKE 'L%'",
                "name LIKE 'L%' AND salary < 10 AND salary > 2",
                "salary > 2 AND name LIKE 'L%' AND salary < 10",
            )
        }
        assert len(texts) == 1

    def test_normalized_constants_and_operators(self):
        # -(5) folds to the literal -5; != normalizes to <>; a literal
        # on the left flips to the column side with the mirrored op.
        a = Restriction.parse("salary > -5 AND salary != 3", SCHEMA)
        b = Restriction.parse("3 <> salary AND -5 < salary", SCHEMA)
        assert a.text == b.text

    def test_canonicalization_preserves_semantics(self):
        rows = [Row(["Laura", 6]), Row(["Bruce", 15]), Row(["Lena", 95])]
        a = Restriction.parse("salary < 10 AND name LIKE 'L%'", SCHEMA)
        b = Restriction.parse("name LIKE 'L%' AND salary < 10", SCHEMA)
        for row in rows:
            assert a(row) == b(row)

    def test_signature_masks_constants(self):
        a = Restriction.parse("salary < 10", SCHEMA)
        b = Restriction.parse("salary < 500", SCHEMA)
        c = Restriction.parse("salary > 10", SCHEMA)
        assert a.signature == b.signature == "salary < ?"
        assert c.signature != a.signature

    def test_signature_agrees_across_conjunct_order(self):
        a = Restriction.parse("salary < 10 AND name LIKE 'L%'", SCHEMA)
        b = Restriction.parse("name LIKE 'Q%' AND salary < 99", SCHEMA)
        assert a.signature == b.signature

    def test_in_list_order_and_duplicates_normalize(self):
        a = Restriction.parse("salary IN (1, 2, 3)", SCHEMA)
        b = Restriction.parse("salary IN (3, 1, 2, 1)", SCHEMA)
        assert a.text == b.text
        assert a.signature == "salary IN (?)"

    def test_true_restriction_signature(self):
        assert Restriction.true(SCHEMA).signature == "?"


class TestProjection:
    def test_identity_default(self):
        projection = Projection(SCHEMA)
        assert projection.is_identity
        assert projection(Row(["Laura", 6])).values == ("Laura", 6)

    def test_subset_and_order(self):
        projection = Projection(SCHEMA, ["salary", "name"])
        assert projection(Row(["Laura", 6])).values == (6, "Laura")
        assert projection.schema.names == ("salary", "name")
        assert not projection.is_identity

    def test_hidden_columns_stripped_from_identity(self):
        projection = Projection(ANNOTATED)
        assert projection.names == ("name", "salary")
        assert projection(Row(["Laura", 6, NULL, NULL])).values == ("Laura", 6)

    def test_rejects_unknown(self):
        with pytest.raises(SchemaError):
            Projection(SCHEMA, ["bonus"])

    def test_rejects_hidden(self):
        with pytest.raises(SchemaError):
            Projection(ANNOTATED, ["$PREVADDR$"])

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Projection(SCHEMA, ["name", "name"])
