"""Restriction and Projection objects."""

import pytest

from repro.errors import EvaluationError, SchemaError
from repro.expr.predicate import Projection, Restriction
from repro.relation.row import Row
from repro.relation.schema import Column, Schema
from repro.relation.types import NULL

SCHEMA = Schema.of(("name", "string"), ("salary", "int"))
ANNOTATED = SCHEMA.with_columns(
    [
        Column("$PREVADDR$", "rid", nullable=True, hidden=True),
        Column("$TIMESTAMP$", "timestamp", nullable=True, hidden=True),
    ]
)


class TestRestriction:
    def test_parse_and_call(self):
        restrict = Restriction.parse("salary < 10", SCHEMA)
        assert restrict(Row(["Laura", 6]))
        assert not restrict(Row(["Bruce", 15]))

    def test_accepts_plain_sequences(self):
        restrict = Restriction.parse("salary < 10", SCHEMA)
        assert restrict(("Laura", 6))

    def test_unknown_does_not_qualify(self):
        schema = Schema.of(("v", "int", True))
        restrict = Restriction.parse("v < 10", schema)
        assert not restrict(Row([NULL]))

    def test_true_restriction(self):
        restrict = Restriction.true(SCHEMA)
        assert restrict(Row(["anyone", 123]))
        assert restrict.text == "TRUE"

    def test_rejects_unknown_columns(self):
        with pytest.raises(EvaluationError):
            Restriction.parse("bonus > 0", SCHEMA)

    def test_rejects_hidden_columns(self):
        with pytest.raises(EvaluationError):
            Restriction.parse("$TIMESTAMP$ IS NULL", ANNOTATED)

    def test_works_over_annotated_rows(self):
        restrict = Restriction.parse("salary < 10", ANNOTATED)
        assert restrict(Row(["Laura", 6, NULL, NULL]))

    def test_text_roundtrip(self):
        restrict = Restriction.parse("salary < 10 AND name LIKE 'L%'", SCHEMA)
        again = Restriction.parse(restrict.text, SCHEMA)
        assert again(Row(["Laura", 6]))


class TestProjection:
    def test_identity_default(self):
        projection = Projection(SCHEMA)
        assert projection.is_identity
        assert projection(Row(["Laura", 6])).values == ("Laura", 6)

    def test_subset_and_order(self):
        projection = Projection(SCHEMA, ["salary", "name"])
        assert projection(Row(["Laura", 6])).values == (6, "Laura")
        assert projection.schema.names == ("salary", "name")
        assert not projection.is_identity

    def test_hidden_columns_stripped_from_identity(self):
        projection = Projection(ANNOTATED)
        assert projection.names == ("name", "salary")
        assert projection(Row(["Laura", 6, NULL, NULL])).values == ("Laura", 6)

    def test_rejects_unknown(self):
        with pytest.raises(SchemaError):
            Projection(SCHEMA, ["bonus"])

    def test_rejects_hidden(self):
        with pytest.raises(SchemaError):
            Projection(ANNOTATED, ["$PREVADDR$"])

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Projection(SCHEMA, ["name", "name"])
