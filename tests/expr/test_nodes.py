"""Evaluator semantics, especially SQL three-valued logic."""

import pytest

from repro.errors import EvaluationError
from repro.expr.parser import parse_expression
from repro.relation.schema import Schema
from repro.relation.types import NULL

SCHEMA = Schema.of(
    ("name", "string"), ("salary", "int"), ("dept", "string", True)
)


def run(text, *values):
    return parse_expression(text).compile(SCHEMA)(values)


class TestComparisons:
    def test_basic(self):
        assert run("salary < 10", "x", 5, "d") is True
        assert run("salary < 10", "x", 15, "d") is False

    def test_null_yields_unknown(self):
        assert run("dept = 'db'", "x", 1, NULL) is None
        assert run("dept <> 'db'", "x", 1, NULL) is None

    def test_string_comparison(self):
        assert run("name >= 'L'", "Laura", 1, "d") is True

    def test_incompatible_types_raise(self):
        with pytest.raises(EvaluationError):
            run("name < 10", "Laura", 1, "d")

    def test_int_float_compatible(self):
        assert run("salary < 9.5", "x", 9, "d") is True


class TestThreeValuedLogic:
    def test_unknown_and_false_is_false(self):
        assert run("dept = 'db' AND salary < 0", "x", 5, NULL) is False

    def test_unknown_and_true_is_unknown(self):
        assert run("dept = 'db' AND salary > 0", "x", 5, NULL) is None

    def test_unknown_or_true_is_true(self):
        assert run("dept = 'db' OR salary > 0", "x", 5, NULL) is True

    def test_unknown_or_false_is_unknown(self):
        assert run("dept = 'db' OR salary < 0", "x", 5, NULL) is None

    def test_not_unknown_is_unknown(self):
        assert run("NOT dept = 'db'", "x", 5, NULL) is None

    def test_is_null_never_unknown(self):
        assert run("dept IS NULL", "x", 5, NULL) is True
        assert run("dept IS NOT NULL", "x", 5, NULL) is False
        assert run("dept IS NULL", "x", 5, "db") is False


class TestArithmetic:
    def test_operations(self):
        assert run("salary + 1 = 6", "x", 5, "d") is True
        assert run("salary * 2 = 10", "x", 5, "d") is True
        assert run("salary - 7 = -2", "x", 5, "d") is True
        assert run("salary / 2 = 2.5", "x", 5, "d") is True
        assert run("salary % 2 = 1", "x", 5, "d") is True

    def test_null_propagates(self):
        schema = Schema.of(("a", "int", True),)
        expr = parse_expression("a + 1 = 2").compile(schema)
        assert expr((NULL,)) is None

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            run("salary / 0 = 1", "x", 5, "d")

    def test_string_concat(self):
        assert run("name + '!' = 'Laura!'", "Laura", 1, "d") is True

    def test_negate_string_raises(self):
        with pytest.raises(EvaluationError):
            run("-name = 'x'", "Laura", 1, "d")


class TestPredicateForms:
    def test_between_inclusive(self):
        assert run("salary BETWEEN 5 AND 9", "x", 5, "d") is True
        assert run("salary BETWEEN 5 AND 9", "x", 9, "d") is True
        assert run("salary BETWEEN 5 AND 9", "x", 10, "d") is False

    def test_between_null(self):
        assert run("dept BETWEEN 'a' AND 'c'", "x", 1, NULL) is None

    def test_in_list(self):
        assert run("dept IN ('db', 'os')", "x", 1, "os") is True
        assert run("dept IN ('db', 'os')", "x", 1, "net") is False

    def test_in_with_null_member_is_unknown_when_absent(self):
        assert run("salary IN (1, NULL)", "x", 2, "d") is None
        assert run("salary IN (2, NULL)", "x", 2, "d") is True

    def test_not_in(self):
        assert run("dept NOT IN ('db')", "x", 1, "os") is True
        assert run("dept NOT IN ('db')", "x", 1, "db") is False

    def test_like(self):
        assert run("name LIKE 'L%'", "Laura", 1, "d") is True
        assert run("name LIKE 'L_'", "La", 1, "d") is True
        assert run("name LIKE 'L_'", "Laura", 1, "d") is False
        assert run("name LIKE '%a%'", "Laura", 1, "d") is True

    def test_like_escapes_regex_chars(self):
        assert run("name LIKE 'a.c'", "abc", 1, "d") is False
        assert run("name LIKE 'a.c'", "a.c", 1, "d") is True

    def test_like_non_string_raises(self):
        with pytest.raises(EvaluationError):
            run("salary LIKE '5'", "x", 5, "d")


class TestCompilation:
    def test_unknown_column_raises_at_compile(self):
        with pytest.raises(EvaluationError):
            parse_expression("bonus > 0").compile(SCHEMA)

    def test_columns_reported(self):
        expr = parse_expression("salary < 10 AND name LIKE 'x%' OR dept IS NULL")
        assert expr.columns() == {"salary", "name", "dept"}

    def test_eval_convenience(self):
        from repro.relation.row import Row

        expr = parse_expression("salary < 10")
        assert expr.eval(Row(["x", 5, "d"]).values, SCHEMA) is True
