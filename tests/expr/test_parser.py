"""Parser: precedence, predicates, error reporting."""

import pytest

from repro.errors import ParseError
from repro.expr.nodes import (
    And,
    Between,
    BinaryOp,
    Comparison,
    InList,
    IsNull,
    Like,
    Not,
    Or,
)
from repro.expr.parser import parse_expression


class TestPrecedence:
    def test_or_binds_loosest(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.right, And)

    def test_not_tighter_than_and(self):
        expr = parse_expression("NOT a = 1 AND b = 2")
        assert isinstance(expr, And)
        assert isinstance(expr.left, Not)

    def test_arithmetic_precedence(self):
        expr = parse_expression("a + 2 * 3 < 10")
        assert isinstance(expr, Comparison)
        plus = expr.left
        assert isinstance(plus, BinaryOp) and plus.op == "+"
        assert isinstance(plus.right, BinaryOp) and plus.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
        assert isinstance(expr, And)
        assert isinstance(expr.left, Or)

    def test_unary_minus(self):
        expr = parse_expression("-a < -3")
        assert expr.sql() == "-a < -3"


class TestPredicates:
    def test_comparisons(self):
        for op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            expr = parse_expression(f"a {op} 1")
            assert isinstance(expr, Comparison)
            assert expr.op == op

    def test_is_null(self):
        assert isinstance(parse_expression("a IS NULL"), IsNull)

    def test_is_not_null(self):
        expr = parse_expression("a IS NOT NULL")
        assert isinstance(expr, IsNull) and expr.negated

    def test_between(self):
        assert isinstance(parse_expression("a BETWEEN 1 AND 5"), Between)

    def test_not_between(self):
        expr = parse_expression("a NOT BETWEEN 1 AND 5")
        assert isinstance(expr, Not)
        assert isinstance(expr.operand, Between)

    def test_between_and_conjunction(self):
        # The AND inside BETWEEN must not swallow the outer conjunction.
        expr = parse_expression("a BETWEEN 1 AND 5 AND b = 2")
        assert isinstance(expr, And)

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert len(expr.items) == 3

    def test_not_in(self):
        expr = parse_expression("a NOT IN (1)")
        assert isinstance(expr, InList) and expr.negated

    def test_like(self):
        expr = parse_expression("name LIKE 'L%'")
        assert isinstance(expr, Like)
        assert expr.pattern == "L%"

    def test_not_like(self):
        expr = parse_expression("name NOT LIKE '_x'")
        assert isinstance(expr, Like) and expr.negated

    def test_boolean_literals(self):
        assert parse_expression("TRUE").sql() == "TRUE"
        assert parse_expression("FALSE").sql() == "FALSE"
        assert parse_expression("NULL").sql() == "NULL"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "a <",
            "a = 1 extra junk",  # consecutive idents
            "a BETWEEN 1",
            "a IN 1",
            "a IN ()",
            "(a = 1",
            "LIKE 'x'",
            "a LIKE 5",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_expression(bad)

    def test_error_mentions_offset_and_text(self):
        with pytest.raises(ParseError, match="offset"):
            parse_expression("a = ")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "salary < 10",
            "a BETWEEN 1 AND 5",
            "name LIKE 'L%'",
            "a IN (1, 2)",
            "x IS NOT NULL",
            "NOT (a = 1 OR b = 2)",
        ],
    )
    def test_sql_reparses_to_same_sql(self, text):
        once = parse_expression(text).sql()
        twice = parse_expression(once).sql()
        assert once == twice
