"""Table system operations (the R* "special runtime routines")."""

import pytest

from repro.errors import CatalogError, SchemaError
from repro.relation.types import NULL
from repro.table import PREVADDR, TIMESTAMP


@pytest.fixture
def table(db):
    t = db.create_table("t", [("v", "int")], annotations="lazy")
    t.bulk_load([[i] for i in range(5)])
    return t


class TestSystemInsert:
    def test_sets_lazy_annotations_null(self, table):
        rid = table.system_insert({"v": 42})
        assert table.annotations(rid) == (NULL, NULL)
        assert table.read(rid).values == (42,)

    def test_no_wal_records(self, db, table):
        before = len(db.wal)
        table.system_insert({"v": 1})
        assert len(db.wal) == before

    def test_hidden_columns_settable(self, db):
        from repro.core.snapshot import BASEADDR
        from repro.relation.schema import Column, Schema
        from repro.relation.types import RidType
        from repro.storage.rid import Rid

        schema = Schema.of(("v", "int")).with_columns(
            [Column(BASEADDR, RidType(), hidden=True)]
        )
        t = db.create_table("hid", schema, annotations="lazy")
        rid = t.system_insert({"v": 1, BASEADDR: Rid(3, 7)})
        full = t.read(rid, visible=False)
        assert full.get(t.schema, BASEADDR) == Rid(3, 7)

    def test_rejected_on_eager(self, db):
        t = db.create_table("e", [("v", "int")], annotations="eager")
        with pytest.raises(CatalogError):
            t.system_insert({"v": 1})


class TestSystemUpdate:
    def test_nulls_timestamp(self, db, table):
        rid = next(r for r, _ in table.scan())
        table.set_annotations(rid, prev=None or NULL, ts=5)
        table.system_update(rid, {"v": 99})
        _, ts = table.annotations(rid)
        assert ts is NULL

    def test_rejects_annotation_fields(self, table):
        rid = next(r for r, _ in table.scan())
        with pytest.raises(SchemaError):
            table.system_update(rid, {TIMESTAMP: 7})
        with pytest.raises(SchemaError):
            table.system_update(rid, {PREVADDR: NULL})

    def test_relocation_on_overflow(self, db):
        t = db.create_table("grow", [("pad", "string")], annotations="lazy")
        rids = t.bulk_load([["x" * 1300] for _ in range(3)])
        new_rid = t.system_update(rids[1], {"pad": "y" * 2700})
        assert new_rid != rids[1]
        assert t.read(new_rid).values == ("y" * 2700,)
        assert t.annotations(new_rid) == (NULL, NULL)


class TestSystemDelete:
    def test_plain_delete(self, db, table):
        rid = next(r for r, _ in table.scan())
        before = len(db.wal)
        table.system_delete(rid)
        assert not table.exists(rid)
        assert len(db.wal) == before

    def test_stats_counted(self, table):
        rid = table.system_insert({"v": 1})
        base = table.stats.modifications
        table.system_update(rid, {"v": 2})
        table.system_delete(rid)
        assert table.stats.modifications == base + 2
