"""Full refresh baseline."""

import pytest

from repro.core.full import FullRefresher
from repro.core.messages import ClearMessage, FullRowMessage
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction


@pytest.fixture
def setup(db):
    table = db.create_table("t", [("name", "string"), ("v", "int")])
    table.bulk_load([[f"r{i}", i] for i in range(10)])
    restriction = Restriction.parse("v < 5", table.schema)
    projection = Projection(table.schema)
    snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
    return table, restriction, projection, snapshot


def refresh(table, restriction, projection, snapshot):
    messages = []

    def deliver(message):
        messages.append(message)
        snapshot.apply(message)

    result = FullRefresher(table).refresh(
        snapshot.snap_time, restriction, projection, deliver
    )
    return result, messages


class TestFullRefresh:
    def test_clear_then_rows(self, setup):
        table, restriction, projection, snapshot = setup
        result, messages = refresh(table, restriction, projection, snapshot)
        assert isinstance(messages[0], ClearMessage)
        rows = [m for m in messages if isinstance(m, FullRowMessage)]
        assert len(rows) == 5
        assert result.entries_sent == 5

    def test_sends_everything_every_time(self, setup):
        table, restriction, projection, snapshot = setup
        first, _ = refresh(table, restriction, projection, snapshot)
        # No changes at all — full refresh still retransmits.
        second, _ = refresh(table, restriction, projection, snapshot)
        assert second.entries_sent == first.entries_sent == 5

    def test_converges_after_changes(self, setup):
        table, restriction, projection, snapshot = setup
        refresh(table, restriction, projection, snapshot)
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[0])
        table.update(rids[1], {"v": 100})
        table.insert(["new", 2])
        refresh(table, restriction, projection, snapshot)
        truth = {
            rid: row.values
            for rid, row in table.scan(visible=True)
            if row.values[1] < 5
        }
        assert snapshot.as_map() == truth

    def test_stale_entries_cleared(self, setup):
        table, restriction, projection, snapshot = setup
        refresh(table, restriction, projection, snapshot)
        for rid, _ in list(table.scan()):
            table.delete(rid)
        refresh(table, restriction, projection, snapshot)
        assert len(snapshot) == 0

    def test_no_annotations_needed(self, setup):
        table, *_ = setup
        assert not table.has_annotations  # works on a plain table

    def test_works_on_empty_table(self, db):
        table = db.create_table("e", [("v", "int")])
        restriction = Restriction.true(table.schema)
        projection = Projection(table.schema)
        snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
        result, _ = refresh(table, restriction, projection, snapshot)
        assert result.entries_sent == 0
