"""Hash-bisection anti-entropy: drift detection and minimal repair.

Convergence contract: after ``resync``, the receiver equals the current
restriction of the base — whatever the drift was (rows deleted behind
the protocol's back, corrupted values, a lost epoch, surplus rows) —
and repair traffic is proportional to the drift, not the table.
"""

import pytest

from repro.core.antientropy import (
    AntiEntropySession,
    verify_snapshot_table,
)
from repro.core.manager import SnapshotManager
from repro.database import Database
from repro.errors import SnapshotError


def build(n_rows=2000, **snapshot_kwargs):
    db = Database("hq", buffer_capacity=64)
    table = db.create_table("emp", [("name", "string"), ("salary", "int")])
    table.bulk_load([[f"e{i}", i % 20] for i in range(n_rows)])
    manager = SnapshotManager(db)
    snap = manager.create_snapshot(
        "low", "emp", where="salary < 10", method="differential",
        **snapshot_kwargs,
    )
    manager.refresh("low")
    return db, table, manager, snap


def truth(table):
    return {
        rid: (row[0], row[1]) for rid, row in table.scan() if row[1] < 10
    }


def contents(snap):
    return {
        addr: tuple(values)[:2]
        for addr, values in snap.table.as_map().items()
    }


class TestVerify:
    def test_fresh_snapshot_verifies(self):
        db, table, manager, snap = build()
        in_sync, stats = manager.verify_snapshot("low")
        assert in_sync
        assert stats.segments_hashed == 1
        assert stats.bytes_hashes > 0

    def test_verify_detects_drift(self):
        db, table, manager, snap = build()
        addr = snap.table.base_addrs()[5]
        snap.table._delete_addr(addr)
        in_sync, _ = manager.verify_snapshot("low")
        assert not in_sync

    def test_verify_detects_base_changes(self):
        """A write after the last refresh is drift from verify's view."""
        db, table, manager, snap = build()
        table.update(next(table.heap.scan_rids()), {"salary": 0})
        in_sync, _ = manager.verify_snapshot("low")
        assert not in_sync

    def test_direct_session_helper(self):
        db, table, manager, snap = build(n_rows=200)
        handle = manager.snapshot("low")
        in_sync, stats = verify_snapshot_table(
            table, handle.restriction, handle.projection, snap.table
        )
        assert in_sync and stats.in_sync


class TestResync:
    def test_drifted_receiver_converges(self):
        db, table, manager, snap = build()
        addrs = snap.table.base_addrs()
        for addr in addrs[10:14]:
            snap.table._delete_addr(addr)
        snap.table._upsert(addrs[100], ("corrupt", -1))
        stats = manager.resync_snapshot("low")
        assert stats.in_sync
        assert stats.leaves_repaired >= 1
        assert contents(snap) == truth(table)

    def test_surplus_rows_are_deleted(self):
        """Rows the base no longer qualifies must disappear on resync."""
        db, table, manager, snap = build()
        from repro.storage.rid import Rid

        ghost_page = table.heap.page_count + 5
        snap.table._upsert(Rid(ghost_page, 1), ("ghost", 1))
        stats = manager.resync_snapshot("low")
        assert stats.rows_deleted >= 1
        assert contents(snap) == truth(table)

    def test_lost_epoch_drift_converges(self):
        """Writes whose refresh never landed are repaired by resync."""
        db, table, manager, snap = build()
        rids = list(table.heap.scan_rids())
        table.update(rids[4], {"salary": 3})
        table.delete(rids[9])
        table.insert(["lost", 2])
        # No refresh runs: the receiver is now behind (a lost-epoch
        # world — the sender thinks it is fresh, the data says no).
        assert contents(snap) != truth(table)
        stats = manager.resync_snapshot("low")
        assert stats.in_sync
        assert contents(snap) == truth(table)

    def test_duplicate_repair_is_idempotent(self):
        """Applying the same repair stream twice leaves the same state."""
        db, table, manager, snap = build(n_rows=600)
        handle = manager.snapshot("low")
        addrs = snap.table.base_addrs()
        snap.table._delete_addr(addrs[3])

        repairs = []

        def duplicating_send(message):
            repairs.append(message)
            snap.table.apply(message)

        session = AntiEntropySession(
            table,
            handle.restriction,
            handle.projection,
            snap.table,
            send=duplicating_send,
        )
        session.resync()
        assert contents(snap) == truth(table)
        # Replay the captured stream wholesale (a duplicated delivery).
        for message in repairs:
            snap.table.apply(message)
        assert contents(snap) == truth(table)

    def test_resync_does_not_advance_snap_time(self):
        db, table, manager, snap = build()
        snap.table._delete_addr(snap.table.base_addrs()[0])
        before = manager.snapshot("low").snap_time
        manager.resync_snapshot("low")
        assert manager.snapshot("low").snap_time == before
        assert snap.table.snap_time == before

    def test_refresh_after_resync_is_correct(self):
        db, table, manager, snap = build(delta_updates=True)
        addrs = snap.table.base_addrs()
        snap.table._upsert(addrs[50], ("corrupt", -2))
        manager.resync_snapshot("low")
        rids = list(table.heap.scan_rids())
        table.update(rids[2], {"salary": 1})
        table.delete(rids[30])
        manager.refresh("low")
        assert contents(snap) == truth(table)

    def test_in_sync_resync_sends_no_repairs(self):
        db, table, manager, snap = build()
        stats = manager.resync_snapshot("low")
        assert stats.segments_hashed == 1
        assert stats.leaves_repaired == 0
        assert stats.bytes_repair == 0


class TestCost:
    def test_small_drift_transfers_far_less_than_full_refresh(self):
        """0.1% drift: resync bytes are a small fraction of a resend."""
        db, table, manager, snap = build(n_rows=4000)
        addrs = snap.table.base_addrs()
        for addr in addrs[:: len(addrs) // 2][:2]:  # 2 of ~2000 rows
            snap.table._delete_addr(addr)
        stats = manager.resync_snapshot("low")
        assert contents(snap) == truth(table)
        full_bytes = sum(
            message_bytes
            for message_bytes in _full_resend_bytes(manager, table)
        )
        assert stats.bytes_total * 10 < full_bytes

    def test_bisection_prunes_clean_segments(self):
        db, table, manager, snap = build(n_rows=4000)
        snap.table._delete_addr(snap.table.base_addrs()[0])
        stats = manager.resync_snapshot("low")
        # One dirty leaf: hashed segments ~ log2(pages), not pages.
        assert stats.leaves_repaired == 1
        assert stats.segments_hashed < table.heap.page_count


def _full_resend_bytes(manager, table):
    """Wire bytes of upserting the whole restriction (the naive resync)."""
    handle = manager.snapshot("low")
    from repro.core.messages import UpsertMessage
    from repro.relation.row import encode_row

    for rid, row in table.scan_full():
        if not handle.restriction(list(row.values)):
            continue
        projected = handle.projection(row)
        blob = encode_row(handle.projection.schema, projected)
        yield UpsertMessage(rid, projected.values, len(blob)).wire_size()


class TestValidation:
    def test_leaf_pages_must_be_positive(self):
        db, table, manager, snap = build(n_rows=100)
        handle = manager.snapshot("low")
        with pytest.raises(SnapshotError, match="leaf"):
            AntiEntropySession(
                table,
                handle.restriction,
                handle.projection,
                snap.table,
                leaf_pages=0,
            )
