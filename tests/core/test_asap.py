"""ASAP propagation: per-operation push and its drawbacks."""

import pytest

from repro.core.asap import AsapPropagator
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction
from repro.net.channel import Link


@pytest.fixture
def setup(db):
    table = db.create_table("t", [("name", "string"), ("v", "int")])
    table.bulk_load([[f"r{i}", i] for i in range(10)])
    restriction = Restriction.parse("v < 5", table.schema)
    projection = Projection(table.schema)
    link = Link("hq->branch")
    snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
    # Seed the snapshot with the current qualified contents.
    for rid, row in table.scan():
        if row.values[1] < 5:
            snapshot._upsert(rid, row.values)
    link.attach(snapshot.receiver())
    propagator = AsapPropagator(table, restriction, projection, link)
    return table, link, snapshot, propagator


class TestContinuousPropagation:
    def test_committed_insert_arrives_immediately(self, setup):
        table, link, snapshot, _ = setup
        rid = table.insert(["new", 1])
        assert snapshot.lookup(rid).values == ("new", 1)

    def test_update_out_of_qualification_deletes(self, setup):
        table, link, snapshot, _ = setup
        rids = [rid for rid, _ in table.scan()]
        table.update(rids[1], {"v": 100})
        assert snapshot.lookup(rids[1]) is None

    def test_delete_propagates(self, setup):
        table, link, snapshot, _ = setup
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[0])
        assert snapshot.lookup(rids[0]) is None

    def test_irrelevant_changes_suppressed(self, setup):
        table, link, snapshot, propagator = setup
        rids = [rid for rid, _ in table.scan()]
        table.update(rids[8], {"v": 901})  # unqualified before and after
        table.delete(rids[9])  # was unqualified
        assert propagator.suppressed == 2
        assert propagator.propagated == 0

    def test_aborted_transactions_never_propagate(self, setup, db):
        table, link, snapshot, propagator = setup
        txn = db.txns.begin()
        table.insert(["ghost", 1], txn=txn)
        txn.abort()
        assert propagator.propagated == 0

    def test_per_operation_cost(self, setup):
        # The drawback: N updates to one entry cost N messages, where
        # differential refresh would transmit at most one.
        table, link, snapshot, propagator = setup
        rids = [rid for rid, _ in table.scan()]
        for value in (1, 2, 3, 4):
            table.update(rids[0], {"v": value})
        assert propagator.propagated == 4
        assert link.stats.messages == 4


class TestLinkFailure:
    def test_changes_buffer_while_down(self, setup):
        table, link, snapshot, propagator = setup
        link.go_down()
        rid = table.insert(["offline", 2])
        assert propagator.buffered == 1
        assert snapshot.lookup(rid) is None

    def test_flush_on_recovery_preserves_order(self, setup):
        table, link, snapshot, propagator = setup
        rids = [rid for rid, _ in table.scan()]
        link.go_down()
        table.update(rids[0], {"v": 1})
        table.update(rids[0], {"v": 2})
        table.delete(rids[1])
        assert propagator.buffered == 3
        assert propagator.buffered_high_water == 3
        link.come_up()
        propagator.try_flush()
        assert propagator.buffered == 0
        assert snapshot.lookup(rids[0]).values == ("r0", 2)
        assert snapshot.lookup(rids[1]) is None

    def test_nothing_overtakes_the_backlog(self, setup):
        table, link, snapshot, propagator = setup
        link.go_down()
        first = table.insert(["first", 1])
        link.come_up()
        # The next committed change must flush the backlog first.
        second = table.insert(["second", 2])
        assert propagator.buffered == 0
        assert snapshot.lookup(first) is not None
        assert snapshot.lookup(second) is not None

    def test_detach_stops_propagation(self, setup):
        table, link, snapshot, propagator = setup
        propagator.detach()
        rid = table.insert(["after", 1])
        assert snapshot.lookup(rid) is None
