"""Figures 5 and 6: the batch-maintenance worked example, pinned.

Covers both the standalone fix-up pass (Figure 7 applied to Figure 5's
"before" state) and the combined fix-up + refresh (the messages and the
snapshot transition of Figure 6).
"""

import pytest

from repro.core.differential import DifferentialRefresher
from repro.core.fixup import base_fixup
from repro.core.messages import EndOfScanMessage, EntryMessage, SnapTimeMessage
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction
from repro.storage.rid import Rid
from repro.workload.employees import (
    BASE_TIME,
    SNAP_TIME,
    figure5_base_table,
    figure5_expected_annotations,
    figure5_snapshot_contents,
    figure6_snapshot_after,
)


@pytest.fixture
def figure5():
    return figure5_base_table()


class TestStandaloneFixup:
    """Figure 7 run against Figure 5's before-image."""

    def test_repairs_to_figure5_after_state(self, figure5):
        db, table, addrs = figure5
        result = base_fixup(table, fixup_time=BASE_TIME)
        for figaddr, expected in figure5_expected_annotations(addrs).items():
            assert table.annotations(addrs[figaddr]) == expected, figaddr

    def test_classification_counts(self, figure5):
        db, table, addrs = figure5
        result = base_fixup(table, fixup_time=BASE_TIME)
        assert result.scanned == 5
        assert result.inserted == 1  # Laura
        assert result.updated == 1  # Hamid
        assert result.deletions_detected == 1  # Jack's absence, seen at Mohan
        assert result.repointed_only == 0

    def test_idempotent(self, figure5):
        db, table, addrs = figure5
        base_fixup(table, fixup_time=BASE_TIME)
        second = base_fixup(table, fixup_time=BASE_TIME + 100)
        assert second.writes == 0
        assert second.inserted == 0
        assert second.deletions_detected == 0

    def test_hamid_repoints_to_laura(self, figure5):
        # Hamid's PrevAddr was 1 (Bruce); Laura's insert at 2 means the
        # fix-up must repoint Hamid to 2 — the "insertions before the
        # current entry" arm of Figure 7.
        db, table, addrs = figure5
        base_fixup(table, fixup_time=BASE_TIME)
        prev, _ = table.annotations(addrs[3])
        assert prev == addrs[2]


class TestCombinedRefresh:
    """Figure 6: messages and snapshot before/after."""

    def run(self, figure5, collect_snapshot=True):
        db, table, addrs = figure5
        restriction = Restriction.parse("salary < 10", table.schema)
        projection = Projection(table.schema)
        snapshot = SnapshotTable(Database("branch"), "lowpaid", projection.schema)
        for base_addr, values in figure5_snapshot_contents(addrs).items():
            snapshot._upsert(base_addr, values)
        snapshot.snap_time = SNAP_TIME
        messages = []

        def deliver(message):
            messages.append(message)
            snapshot.apply(message)

        result = DifferentialRefresher(table).refresh(
            SNAP_TIME, restriction, projection, deliver
        )
        return table, addrs, snapshot, messages, result

    def test_refresh_messages_match_figure6(self, figure5):
        table, addrs, snapshot, messages, result = self.run(figure5)
        entries = [
            (m.addr, m.prev_qual, m.values)
            for m in messages
            if isinstance(m, EntryMessage)
        ]
        assert entries == [
            (addrs[2], Rid.BEGIN, ("Laura", 6)),
            (addrs[5], addrs[2], ("Mohan", 9)),
        ]

    def test_end_of_scan_names_paul(self, figure5):
        table, addrs, snapshot, messages, result = self.run(figure5)
        end = [m for m in messages if isinstance(m, EndOfScanMessage)]
        assert len(end) == 1
        assert end[0].last_qual == addrs[6]

    def test_new_snap_time(self, figure5):
        table, addrs, snapshot, messages, result = self.run(figure5)
        assert result.new_snap_time == BASE_TIME
        assert messages[-1].time == BASE_TIME
        assert isinstance(messages[-1], SnapTimeMessage)

    def test_snapshot_after_matches_figure6(self, figure5):
        table, addrs, snapshot, messages, result = self.run(figure5)
        assert snapshot.as_map() == figure6_snapshot_after(addrs)
        assert snapshot.snap_time == BASE_TIME

    def test_annotations_repaired_during_refresh(self, figure5):
        table, addrs, snapshot, messages, result = self.run(figure5)
        for figaddr, expected in figure5_expected_annotations(addrs).items():
            assert table.annotations(addrs[figaddr]) == expected

    def test_entry_count(self, figure5):
        table, addrs, snapshot, messages, result = self.run(figure5)
        assert result.entries_sent == 2
        assert result.qualified == 3  # Laura, Mohan, Paul
        assert result.scanned == 5

    def test_followup_refresh_is_quiet(self, figure5):
        table, addrs, snapshot, messages, result = self.run(figure5)
        restriction = Restriction.parse("salary < 10", table.schema)
        projection = Projection(table.schema)
        second = []
        DifferentialRefresher(table).refresh(
            result.new_snap_time, restriction, projection, second.append
        )
        assert [m for m in second if isinstance(m, EntryMessage)] == []
