"""Log-scan refresh: culling, net effects, truncation fallback."""

import pytest

from repro.core.logbased import LogRefresher
from repro.core.messages import DeleteMessage, UpsertMessage
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction


@pytest.fixture
def setup(db):
    table = db.create_table("t", [("name", "string"), ("v", "int")])
    for i in range(10):
        table.insert([f"r{i}", i])  # logged inserts (not bulk load)
    restriction = Restriction.parse("v < 5", table.schema)
    projection = Projection(table.schema)
    snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
    refresher = LogRefresher(table)
    return table, restriction, projection, snapshot, refresher


def refresh(setup, from_lsn):
    table, restriction, projection, snapshot, refresher = setup
    messages = []

    def deliver(message):
        messages.append(message)
        snapshot.apply(message)

    result = refresher.refresh(
        0, restriction, projection, deliver, from_lsn=from_lsn
    )
    return result, messages


class TestCulling:
    def test_scans_everything_ships_relevant(self, setup, db):
        table = setup[0]
        db.create_table("other", [("x", "int")]).insert([1])
        mark = db.wal.next_lsn
        rids = [rid for rid, _ in table.scan()]
        table.update(rids[0], {"v": 1})
        db.table("other").insert([2])  # noise the cull must skip
        result, _ = refresh(setup, mark)
        assert result.relevant_records == 1
        assert result.log_records_scanned > result.relevant_records

    def test_replays_history_from_lsn_1(self, setup):
        result, _ = refresh(setup, 1)
        snapshot = setup[3]
        assert len(snapshot) == 5  # v in 0..4

    def test_net_effect_only(self, setup, db):
        table, _, _, snapshot, _ = setup
        refresh(setup, 1)
        mark = db.wal.next_lsn
        rids = [rid for rid, _ in table.scan()]
        for value in (1, 2, 3):
            table.update(rids[0], {"v": value})
        result, messages = refresh(setup, mark)
        upserts = [m for m in messages if isinstance(m, UpsertMessage)]
        assert len(upserts) == 1  # last change wins
        assert snapshot.lookup(rids[0]).values == ("r0", 3)

    def test_delete_of_qualified_entry(self, setup, db):
        table, _, _, snapshot, _ = setup
        refresh(setup, 1)
        mark = db.wal.next_lsn
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[0])
        result, messages = refresh(setup, mark)
        deletes = [m for m in messages if isinstance(m, DeleteMessage)]
        assert [m.addr for m in deletes] == [rids[0]]

    def test_delete_of_unqualified_entry_suppressed(self, setup, db):
        table = setup[0]
        refresh(setup, 1)
        mark = db.wal.next_lsn
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[9])  # v=9, never in the snapshot
        result, _ = refresh(setup, mark)
        assert result.entries_sent == 0

    def test_insert_then_delete_nets_to_nothing(self, setup, db):
        table = setup[0]
        refresh(setup, 1)
        mark = db.wal.next_lsn
        rid = table.insert(["flash", 1])
        table.delete(rid)
        result, _ = refresh(setup, mark)
        assert result.entries_sent == 0

    def test_delete_then_reinsert_unqualified(self, setup, db):
        table, _, _, snapshot, _ = setup
        refresh(setup, 1)
        mark = db.wal.next_lsn
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[0])  # was qualified
        reborn = table.insert(["ghost", 999])
        assert reborn == rids[0]
        result, messages = refresh(setup, mark)
        deletes = [m for m in messages if isinstance(m, DeleteMessage)]
        assert [m.addr for m in deletes] == [rids[0]]
        assert snapshot.lookup(rids[0]) is None

    def test_aborted_changes_excluded(self, setup, db):
        table = setup[0]
        refresh(setup, 1)
        mark = db.wal.next_lsn
        txn = db.txns.begin()
        table.insert(["never", 0], txn=txn)
        txn.abort()
        result, _ = refresh(setup, mark)
        assert result.entries_sent == 0


class TestTruncationFallback:
    def test_falls_back_to_full(self):
        db = Database("tiny-log", wal_capacity_bytes=400)
        table = db.create_table("t", [("v", "int")])
        for i in range(30):  # blows past the log capacity
            table.insert([i])
        restriction = Restriction.parse("v < 15", table.schema)
        projection = Projection(table.schema)
        snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
        refresher = LogRefresher(table)
        messages = []

        def deliver(message):
            messages.append(message)
            snapshot.apply(message)

        result = refresher.refresh(
            0, restriction, projection, deliver, from_lsn=1
        )
        assert result.fell_back_full
        assert result.entries_sent == 15
        truth = {
            rid: row.values
            for rid, row in table.scan(visible=True)
            if row.values[0] < 15
        }
        assert snapshot.as_map() == truth
