"""Cache retention on drop/truncate: abandoned pages leave the pool.

The buffer pool's frame LRU and columnar batch cache are keyed by
physical page number.  A dropped table's pages are garbage — retaining
their frames squats in the LRU (and writing them back on eviction
would be wasted I/O), and retaining their batch entries lets the cache
serve pages whose owner is gone.  Truncate is the subtler case: the
pages remain owned, so dirty frames must survive, but every cached
batch is definitionally stale.
"""

import pytest

from repro.core.manager import SnapshotManager
from repro.core.snapshot import STORAGE_PREFIX
from repro.database import Database
from repro.errors import BufferPoolError


@pytest.fixture
def world():
    db = Database("evict", buffer_capacity=32)
    table = db.create_table("t", [("v", "int")])
    table.bulk_load([[i] for i in range(500)])
    return db, table


def _warm(table):
    """Touch every page so frames (and batches, if any) are cached."""
    for _ in table.scan():
        pass


class TestDropTable:
    def test_drop_discards_frames_and_batches(self, world):
        db, table = world
        _warm(table)
        pool = table.heap.pool
        pages = set(table.heap.physical_pages())
        assert any(no in pages for no in range(len(pool) + len(pages)))
        db.drop_table("t")
        for page_no in pages:
            assert page_no not in pool.pinned_pages()
        # No frame for any of the dropped pages survives.
        assert not pages & set(
            no for no in pages if pool._frames.get(no) is not None
        )

    def test_drop_does_not_write_back(self, world):
        db, table = world
        _warm(table)
        rid = next(table.heap.scan_rids())
        table.update(rid, {"v": -1})  # leaves a dirty frame
        writebacks_before = table.heap.pool.stats.writebacks
        db.drop_table("t")
        assert table.heap.pool.stats.writebacks == writebacks_before


class TestTruncate:
    def test_truncate_removes_all_rows(self, world):
        _, table = world
        removed = table.truncate()
        assert removed == 500
        assert list(table.scan()) == []

    def test_truncate_evicts_stale_batches(self, world):
        _, table = world
        pool = table.heap.pool
        for page_no in table.heap.physical_pages():
            pool.batch_store(page_no, object())
        assert pool.batch_entries() > 0
        table.truncate()
        assert pool.batch_entries() == 0

    def test_truncated_table_is_reusable(self, world):
        _, table = world
        table.truncate()
        table.insert([7])
        assert [row[0] for _, row in table.scan()] == [7]


class TestDropSnapshot:
    def test_drop_snapshot_drops_receiver_storage(self):
        db = Database("hq", buffer_capacity=32)
        table = db.create_table("t", [("v", "int")])
        table.bulk_load([[i] for i in range(50)])
        manager = SnapshotManager(db)
        manager.create_snapshot("s", "t", method="differential")
        storage_name = STORAGE_PREFIX + "s"
        assert db.has_table(storage_name)
        manager.drop_snapshot("s")
        assert not db.has_table(storage_name)


class TestPinnedDiscard:
    def test_pinned_page_blocks_discard(self, world):
        db, table = world
        page_no = table.heap.physical_pages()[0]
        pool = table.heap.pool
        pool.pin(page_no)
        with pytest.raises(BufferPoolError):
            db.drop_table("t")
        pool.unpin(page_no)
