"""Snapshot table receiver (Figure 4 semantics)."""

import pytest

from repro.core.messages import (
    ClearMessage,
    DeleteMessage,
    DeleteRangeMessage,
    EndOfScanMessage,
    EntryMessage,
    FullRowMessage,
    SnapTimeMessage,
    UpsertMessage,
)
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.errors import SnapshotError
from repro.relation.schema import Schema
from repro.storage.rid import Rid

SCHEMA = Schema.of(("name", "string"), ("salary", "int"))


@pytest.fixture
def snap():
    return SnapshotTable(Database("site"), "s", SCHEMA)


def addr(slot):
    return Rid(0, slot)


def preload(snap, entries):
    for slot, values in entries.items():
        snap._upsert(addr(slot), values)


class TestEntryMessage:
    def test_insert_when_absent(self, snap):
        snap.apply(EntryMessage(addr(2), Rid.BEGIN, ("Laura", 6), 10))
        assert snap.as_map() == {addr(2): ("Laura", 6)}

    def test_update_when_present(self, snap):
        preload(snap, {2: ("Laura", 5)})
        snap.apply(EntryMessage(addr(2), Rid.BEGIN, ("Laura", 6), 10))
        assert snap.lookup(addr(2)).values == ("Laura", 6)
        assert len(snap) == 1

    def test_clears_open_interval(self, snap):
        preload(snap, {1: ("a", 1), 2: ("b", 2), 3: ("c", 3), 4: ("d", 4)})
        snap.apply(EntryMessage(addr(4), addr(1), ("d", 40), 10))
        # Entries strictly between 1 and 4 vanish; endpoints survive.
        assert set(snap.base_addrs()) == {addr(1), addr(4)}

    def test_interval_excludes_endpoints(self, snap):
        preload(snap, {1: ("a", 1), 3: ("c", 3)})
        snap.apply(EntryMessage(addr(3), addr(1), ("c", 30), 10))
        assert snap.lookup(addr(1)) is not None
        assert snap.lookup(addr(3)).values == ("c", 30)


class TestEndOfScan:
    def test_deletes_tail(self, snap):
        preload(snap, {1: ("a", 1), 5: ("e", 5), 6: ("f", 6)})
        snap.apply(EndOfScanMessage(addr(1)))
        assert snap.base_addrs() == [addr(1)]

    def test_begin_clears_everything(self, snap):
        preload(snap, {1: ("a", 1), 2: ("b", 2)})
        snap.apply(EndOfScanMessage(Rid.BEGIN))
        assert len(snap) == 0


class TestOtherMessages:
    def test_snap_time(self, snap):
        snap.apply(SnapTimeMessage(430))
        assert snap.snap_time == 430

    def test_snap_time_cannot_regress(self, snap):
        snap.apply(SnapTimeMessage(430))
        with pytest.raises(SnapshotError):
            snap.apply(SnapTimeMessage(100))

    def test_delete_range(self, snap):
        preload(snap, {1: ("a", 1), 2: ("b", 2), 3: ("c", 3)})
        snap.apply(DeleteRangeMessage(addr(1), addr(3)))
        assert set(snap.base_addrs()) == {addr(1), addr(3)}

    def test_delete_range_unbounded(self, snap):
        preload(snap, {1: ("a", 1), 2: ("b", 2), 3: ("c", 3)})
        snap.apply(DeleteRangeMessage(addr(1), None))
        assert snap.base_addrs() == [addr(1)]

    def test_upsert_and_delete(self, snap):
        snap.apply(UpsertMessage(addr(1), ("a", 1), 10))
        snap.apply(UpsertMessage(addr(1), ("a", 2), 10))
        assert snap.lookup(addr(1)).values == ("a", 2)
        snap.apply(DeleteMessage(addr(1)))
        assert len(snap) == 0

    def test_delete_absent_is_noop(self, snap):
        snap.apply(DeleteMessage(addr(9)))
        assert len(snap) == 0

    def test_clear_and_full_rows(self, snap):
        preload(snap, {1: ("a", 1)})
        snap.apply(ClearMessage())
        assert len(snap) == 0
        snap.apply(FullRowMessage(addr(2), ("b", 2), 10))
        assert snap.as_map() == {addr(2): ("b", 2)}

    def test_unknown_message_rejected(self, snap):
        with pytest.raises(SnapshotError):
            snap.apply(object())


class TestReads:
    def test_rows_ordered_by_base_addr(self, snap):
        preload(snap, {5: ("e", 5), 1: ("a", 1), 3: ("c", 3)})
        assert [r.values for r in snap.rows()] == [("a", 1), ("c", 3), ("e", 5)]

    def test_entries_pairs(self, snap):
        preload(snap, {1: ("a", 1)})
        assert list(snap.entries()) == [(addr(1), snap.lookup(addr(1)))]

    def test_reserved_column_name_rejected(self):
        bad = Schema.of(("$BASEADDR$", "int"),)
        with pytest.raises(SnapshotError):
            SnapshotTable(Database("x"), "s", bad)

    def test_apply_counters(self, snap):
        snap.apply(UpsertMessage(addr(1), ("a", 1), 10))
        snap.apply(DeleteMessage(addr(1)))
        assert snap.applied_upserts == 1
        assert snap.applied_deletes == 1
