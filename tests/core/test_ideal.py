"""Ideal refresh: exact net changes, nothing else."""

import pytest

from repro.core.ideal import IdealRefresher
from repro.core.messages import DeleteMessage, UpsertMessage
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction


@pytest.fixture
def setup(db):
    table = db.create_table("t", [("name", "string"), ("v", "int")])
    table.bulk_load([[f"r{i}", i] for i in range(10)])
    restriction = Restriction.parse("v < 5", table.schema)
    projection = Projection(table.schema)
    snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
    refresher = IdealRefresher(table)
    return table, restriction, projection, snapshot, refresher


def refresh(setup):
    table, restriction, projection, snapshot, refresher = setup
    messages = []

    def deliver(message):
        messages.append(message)
        snapshot.apply(message)

    result = refresher.refresh(
        snapshot.snap_time, restriction, projection, deliver
    )
    return result, messages


class TestIdealRefresh:
    def test_initial_population(self, setup):
        result, messages = refresh(setup)
        assert result.entries_sent == 5
        assert all(
            isinstance(m, UpsertMessage)
            for m in messages
            if m.counts_as_entry
        )

    def test_quiescent_refresh_sends_zero(self, setup):
        refresh(setup)
        result, _ = refresh(setup)
        assert result.entries_sent == 0

    def test_exactly_the_net_change(self, setup):
        table = setup[0]
        refresh(setup)
        rids = [rid for rid, _ in table.scan()]
        table.update(rids[2], {"v": 3})  # changed, still qualified: 1 upsert
        table.update(rids[3], {"v": 3})  # unchanged value? no — 3 != 3? it was 3
        result, messages = refresh(setup)
        upserts = [m for m in messages if isinstance(m, UpsertMessage)]
        # rids[3] had v=3 already, so its projected values are unchanged:
        # the ideal algorithm must NOT transmit it.
        assert [m.addr for m in upserts] == [rids[2]]

    def test_only_most_recent_change_per_entry(self, setup):
        table = setup[0]
        refresh(setup)
        rids = [rid for rid, _ in table.scan()]
        for value in (1, 2, 3, 4):  # four updates to one entry
            table.update(rids[0], {"v": value})
        result, _ = refresh(setup)
        assert result.entries_sent == 1

    def test_changes_to_unqualified_entries_not_transmitted(self, setup):
        table = setup[0]
        refresh(setup)
        rids = [rid for rid, _ in table.scan()]
        table.update(rids[8], {"v": 900})  # unqualified before and after
        result, _ = refresh(setup)
        assert result.entries_sent == 0

    def test_disqualified_entry_deleted(self, setup):
        table = setup[0]
        refresh(setup)
        rids = [rid for rid, _ in table.scan()]
        table.update(rids[1], {"v": 100})
        result, messages = refresh(setup)
        deletes = [m for m in messages if isinstance(m, DeleteMessage)]
        assert [m.addr for m in deletes] == [rids[1]]
        assert result.entries_sent == 1

    def test_deleted_entry_deleted(self, setup):
        table, _, _, snapshot, _ = setup
        refresh(setup)
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[0])
        result, _ = refresh(setup)
        assert result.entries_sent == 1
        assert snapshot.lookup(rids[0]) is None

    def test_shadow_size_tracks_snapshot(self, setup):
        table, _, _, _, refresher = setup
        refresh(setup)
        assert refresher.shadow_size == 5  # base-site state: the cost

    def test_converges(self, setup):
        table, restriction, _, snapshot, _ = setup
        refresh(setup)
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[0])
        table.update(rids[1], {"v": 2})
        table.insert(["new", 0])
        refresh(setup)
        truth = {
            rid: row.values
            for rid, row in table.scan(visible=True)
            if row.values[1] < 5
        }
        assert snapshot.as_map() == truth
