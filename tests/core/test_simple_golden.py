"""Figures 1 and 2: the simple algorithm's worked example, pinned."""

import pytest

from repro.core.messages import SnapTimeMessage
from repro.core.simple import SimpleBaseTable, SimpleElementMessage, SimpleSnapshot
from repro.errors import SnapshotError
from repro.relation.schema import Schema
from repro.workload.employees import (
    BASE_TIME,
    SNAP_TIME,
    figure1_simple_table,
    figure2_snapshot_before,
)


def salary_lt_10(values):
    return values[1] < 10


class TestFigure1Refresh:
    """The exact refresh messages of Figure 1."""

    def run_refresh(self):
        table = figure1_simple_table()
        messages = []
        new_time = table.refresh(SNAP_TIME, salary_lt_10, messages.append)
        return messages, new_time

    def test_messages_match_figure(self):
        messages, _ = self.run_refresh()
        elements = [
            (m.addr, m.empty, m.values)
            for m in messages
            if isinstance(m, SimpleElementMessage)
        ]
        assert elements == [
            (2, False, ("Laura", 6)),   # Laura qualifies and changed
            (3, True, None),            # Hamid had a raise: may have qualified
            (4, True, None),            # emptied since SnapTime
            (7, True, None),            # emptied since SnapTime
        ]

    def test_new_snap_time_is_base_time(self):
        messages, new_time = self.run_refresh()
        assert new_time == BASE_TIME
        assert isinstance(messages[-1], SnapTimeMessage)
        assert messages[-1].time == BASE_TIME

    def test_unchanged_entries_not_sent(self):
        messages, _ = self.run_refresh()
        sent = {m.addr for m in messages if isinstance(m, SimpleElementMessage)}
        assert 1 not in sent  # Bruce: old timestamp
        assert 5 not in sent  # Mohan: old timestamp
        assert 6 not in sent  # Paul: old timestamp


class TestFigure2SnapshotTransition:
    """Snapshot before/after images of Figure 2."""

    def test_before_to_after(self):
        table = figure1_simple_table()
        snapshot = SimpleSnapshot()
        snapshot.entries = figure2_snapshot_before()
        snapshot.snap_time = SNAP_TIME

        def deliver(message):
            snapshot.apply(message)

        table.refresh(SNAP_TIME, salary_lt_10, deliver)
        assert snapshot.as_map() == {
            2: ("Laura", 6),
            5: ("Mohan", 9),
            6: ("Paul", 8),
        }
        assert snapshot.snap_time == BASE_TIME

    def test_second_refresh_sends_nothing(self):
        table = figure1_simple_table()
        snapshot = SimpleSnapshot()
        snapshot.entries = figure2_snapshot_before()
        first = []
        table.refresh(SNAP_TIME, salary_lt_10, lambda m: (first.append(m), snapshot.apply(m)))
        second = []
        table.refresh(BASE_TIME, salary_lt_10, second.append)
        elements = [m for m in second if isinstance(m, SimpleElementMessage)]
        assert elements == []


class TestSimpleBaseTable:
    @pytest.fixture
    def table(self):
        return SimpleBaseTable(5, Schema.of(("v", "int"),))

    def test_insert_takes_lowest_empty(self, table):
        assert table.insert((1,)) == 1
        assert table.insert((2,)) == 2
        table.delete(1)
        assert table.insert((3,)) == 1

    def test_insert_into_occupied_rejected(self, table):
        table.insert((1,), addr=2)
        with pytest.raises(SnapshotError):
            table.insert((9,), addr=2)

    def test_full_space_rejected(self, table):
        for _ in range(5):
            table.insert((0,))
        with pytest.raises(SnapshotError):
            table.insert((9,))

    def test_update_requires_occupied(self, table):
        with pytest.raises(SnapshotError):
            table.update(1, (9,))

    def test_delete_requires_occupied(self, table):
        with pytest.raises(SnapshotError):
            table.delete(1)

    def test_out_of_range_address(self, table):
        with pytest.raises(SnapshotError):
            table.get(99)

    def test_every_modification_advances_timestamps(self, table):
        addr = table.insert((1,))
        messages = []
        table.refresh(0, lambda v: True, messages.append)
        snap_time = messages[-1].time
        table.update(addr, (2,))
        messages2 = []
        table.refresh(snap_time, lambda v: True, messages2.append)
        sent = [m for m in messages2 if isinstance(m, SimpleElementMessage)]
        assert [(m.addr, m.values) for m in sent] == [(addr, (2,))]

    def test_occupied_map(self, table):
        table.insert((1,))
        table.insert((2,))
        assert table.occupied() == {1: (1,), 2: (2,)}
