"""Refresh-method cost model and selection."""

import pytest

from repro.catalog.compiler import RefreshMethod
from repro.core.costmodel import CostModel
from repro.errors import ReproError


@pytest.fixture
def model():
    return CostModel()


class TestCosts:
    def test_full_cost_scales_with_selectivity(self, model):
        assert model.full_cost(1000, 0.5) > model.full_cost(1000, 0.1)

    def test_index_reduces_full_scan_cost(self, model):
        assert model.full_cost(1000, 0.1, has_index=True) < model.full_cost(
            1000, 0.1, has_index=False
        )

    def test_differential_cost_grows_with_activity(self, model):
        low = model.differential_cost(1000, 0.5, 0.01)
        high = model.differential_cost(1000, 0.5, 1.0)
        assert high > low

    def test_negative_weight_rejected(self):
        with pytest.raises(ReproError):
            CostModel(message_weight=-1)


class TestSelection:
    def test_low_activity_picks_differential(self, model):
        choice = model.choose(10_000, 0.5, update_activity=0.01)
        assert choice is RefreshMethod.DIFFERENTIAL

    def test_high_activity_with_index_picks_full(self, model):
        choice = model.choose(10_000, 0.5, update_activity=4.0, has_index=True)
        assert choice is RefreshMethod.FULL

    def test_selective_snapshot_with_index_prefers_full(self, model):
        # With q = 1% and an index, full refresh touches 1% of the table;
        # differential still scans everything.
        choice = model.choose(
            100_000, 0.01, update_activity=0.5, has_index=True
        )
        assert choice is RefreshMethod.FULL

    def test_crossover_monotone_in_selectivity(self, model):
        # A wider snapshot keeps differential attractive longer.
        narrow = model.crossover_activity(10_000, 0.05, has_index=True)
        wide = model.crossover_activity(10_000, 0.8, has_index=True)
        assert wide > narrow

    def test_crossover_consistent_with_choice(self, model):
        crossover = model.crossover_activity(10_000, 0.3, has_index=True)
        if crossover != float("inf"):
            below = model.choose(
                10_000, 0.3, update_activity=crossover * 0.5, has_index=True
            )
            above = model.choose(
                10_000, 0.3, update_activity=min(crossover * 2.0, 8.0),
                has_index=True,
            )
            assert below is RefreshMethod.DIFFERENTIAL
            assert above is RefreshMethod.FULL

    def test_no_index_differential_usually_wins(self, model):
        # Without an index the full method also scans the whole table,
        # so differential dominates until traffic converges.
        choice = model.choose(10_000, 0.5, update_activity=0.2)
        assert choice is RefreshMethod.DIFFERENTIAL
