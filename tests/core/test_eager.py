"""Stage 3: eager annotation maintenance + Figure-3 refresh.

The eager variant pays for annotations on every insert/delete so refresh
can run without fix-up.  These tests check the maintenance invariants
and that eager refresh converges exactly like the lazy pipeline.
"""

import random

import pytest

from repro.core.differential import base_refresh
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction
from repro.relation.types import NULL
from repro.storage.rid import Rid


@pytest.fixture
def eager(db):
    table = db.create_table("t", [("v", "int")], annotations="eager")
    for i in range(12):
        table.insert([i * 10])
    return table


def chain_is_consistent(table):
    """Every entry's PrevAddr names its actual live predecessor."""
    previous = Rid.BEGIN
    for rid, _ in table.scan():
        prev, ts = table.annotations(rid)
        assert prev == previous, f"{rid}: PrevAddr {prev} != {previous}"
        assert ts is not NULL
        previous = rid


class TestChainInvariant:
    def test_after_bootstrap(self, eager):
        chain_is_consistent(eager)

    def test_after_deletes(self, eager):
        rids = [rid for rid, _ in eager.scan()]
        for victim in (rids[0], rids[5], rids[11]):
            eager.delete(victim)
        chain_is_consistent(eager)

    def test_after_reuse(self, eager):
        rids = [rid for rid, _ in eager.scan()]
        eager.delete(rids[4])
        eager.delete(rids[5])
        eager.insert([999])
        eager.insert([998])
        chain_is_consistent(eager)

    def test_randomized(self, db):
        rng = random.Random(4)
        table = db.create_table("r", [("v", "int")], annotations="eager")
        live = []
        for _ in range(300):
            roll = rng.random()
            if live and roll < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                table.delete(victim)
            elif live and roll < 0.6:
                target = live[rng.randrange(len(live))]
                table.update(target, {"v": rng.randrange(100)})
            else:
                live.append(table.insert([rng.randrange(100)]))
        chain_is_consistent(table)


class TestEagerRefresh:
    def run_refresh(self, table, snapshot, snap_time, restriction, projection):
        messages = []

        def deliver(message):
            messages.append(message)
            snapshot.apply(message)

        result = base_refresh(table, snap_time, restriction, projection, deliver)
        return result, messages

    def test_converges_over_rounds(self, db):
        rng = random.Random(6)
        table = db.create_table("t", [("v", "int")], annotations="eager")
        live = [table.insert([rng.randrange(100)]) for _ in range(25)]
        restriction = Restriction.parse("v < 50", table.schema)
        projection = Projection(table.schema)
        snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
        snap_time = 0
        for _ in range(6):
            result, _ = self.run_refresh(
                table, snapshot, snap_time, restriction, projection
            )
            snap_time = result.new_snap_time
            truth = {
                rid: row.values
                for rid, row in table.scan(visible=True)
                if row.values[0] < 50
            }
            assert snapshot.as_map() == truth
            for _ in range(8):
                roll = rng.random()
                if live and roll < 0.35:
                    table.delete(live.pop(rng.randrange(len(live))))
                elif live and roll < 0.7:
                    table.update(
                        live[rng.randrange(len(live))],
                        {"v": rng.randrange(100)},
                    )
                else:
                    live.append(table.insert([rng.randrange(100)]))

    def test_deletion_transmits_successor(self, eager, db):
        restriction = Restriction.true(eager.schema)
        projection = Projection(eager.schema)
        snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
        result, _ = self.run_refresh(eager, snapshot, 0, restriction, projection)
        rids = [rid for rid, _ in eager.scan()]
        eager.delete(rids[3])
        result, messages = self.run_refresh(
            eager, snapshot, result.new_snap_time, restriction, projection
        )
        # The successor carries the deletion news (its TimeStamp was
        # stamped by the eager delete), costing exactly one entry.
        assert result.entries_sent == 1
        assert len(snapshot) == 11

    def test_no_fixup_writes_ever(self, eager):
        restriction = Restriction.true(eager.schema)
        projection = Projection(eager.schema)
        result = base_refresh(
            eager, 0, restriction, projection, lambda m: None
        )
        assert result.fixup_writes == 0
