"""Page-summary skipping in the differential refresher.

The dangerous part of skipping a page is the receiver contract: every
EntryMessage's ``(prev_qual, addr)`` range deletes snapshot rows, so a
wrong skip silently wipes out good data, and a missed ``PrevAddr``
anomaly silently keeps deleted data.  These tests drive exactly those
boundaries.
"""

import pytest

from repro.core.differential import DifferentialRefresher
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction


def build(db, rows=12, pad=900):
    """A lazy table spanning several pages (~4 rows per 4 KiB page)."""
    table = db.create_table(
        "t", [("v", "int"), ("pad", "string")], annotations="lazy"
    )
    rids = table.bulk_load([[i, "x" * pad] for i in range(rows)])
    assert table.heap.page_count >= 3
    return table, rids


def refresh_into(refresher, snapshot, snap_time, restriction, projection):
    messages = []

    def deliver(message):
        messages.append(repr(message))
        snapshot.apply(message)

    result = refresher.refresh(snap_time, restriction, projection, deliver)
    return result, messages


def truth_map(table, cutoff):
    return {
        rid: row.values
        for rid, row in table.scan(visible=True)
        if row.values[0] < cutoff
    }


@pytest.fixture
def setup(db):
    table, rids = build(db)
    restriction = Restriction.parse("v < 100", table.schema)
    projection = Projection(table.schema)
    snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
    refresher = DifferentialRefresher(table, use_page_summaries=True)
    result, _ = refresh_into(refresher, snapshot, 0, restriction, projection)
    return table, rids, restriction, projection, snapshot, refresher, result


class TestQuiescentSkip:
    def test_second_refresh_skips_every_page(self, setup):
        table, _, restriction, projection, snapshot, refresher, first = setup
        assert first.pages_scanned == table.heap.page_count
        second, _ = refresh_into(
            refresher, snapshot, first.new_snap_time, restriction, projection
        )
        assert second.pages_skipped == table.heap.page_count
        assert second.pages_scanned == 0
        assert second.scanned == 0
        assert second.rows_decoded == 0
        assert second.entries_sent == 0
        assert snapshot.as_map() == truth_map(table, 100)

    def test_skipped_pages_are_never_pinned(self, setup):
        table, _, restriction, projection, snapshot, refresher, first = setup
        stats = table.heap.pool.stats
        pins_before = stats.hits + stats.misses
        second, _ = refresh_into(
            refresher, snapshot, first.new_snap_time, restriction, projection
        )
        assert second.pages_skipped == table.heap.page_count
        # No buffer traffic at all: clean pages are decided on summaries
        # alone, without touching the pool.
        assert stats.hits + stats.misses == pins_before
        assert second.buffer_hits == 0 and second.buffer_misses == 0

    def test_repr_surfaces_pages_and_hit_rate(self, setup):
        *_, first = setup
        text = repr(first)
        assert "hit_rate=" in text
        assert "skip" in text


class TestDirtyPageGranularity:
    def test_single_update_scans_one_page(self, setup):
        table, rids, restriction, projection, snapshot, refresher, first = setup
        table.update(rids[0], {"v": 50})
        second, _ = refresh_into(
            refresher, snapshot, first.new_snap_time, restriction, projection
        )
        assert second.pages_scanned == 1
        assert second.pages_skipped == table.heap.page_count - 1
        assert second.entries_sent >= 1
        assert snapshot.as_map() == truth_map(table, 100)

    def test_cross_page_delete_detected(self, setup):
        """Deleting page 0's last entry leaves the anomaly on page 1.

        Page 1's bytes are untouched (its version still matches the
        cache), so only the first_prev boundary check can catch that its
        first entry's PrevAddr now dangles at a dead address.
        """
        table, rids, restriction, projection, snapshot, refresher, first = setup
        by_page = {}
        for rid in rids:
            by_page.setdefault(rid.page_no, []).append(rid)
        victim = by_page[0][-1]
        table.delete(victim)
        second, _ = refresh_into(
            refresher, snapshot, first.new_snap_time, restriction, projection
        )
        assert second.deletions_detected == 1
        # Page 0 (structural) and page 1 (anomaly) scanned; the rest skip.
        assert second.pages_scanned == 2
        assert second.pages_skipped == table.heap.page_count - 2
        assert snapshot.as_map() == truth_map(table, 100)
        assert victim not in snapshot.as_map()

    def test_pending_deletion_flag_forces_next_page_scan(self, setup):
        """An unqualified change at a page's end taints the next page.

        The entry that must carry the deletion range lives on page 1,
        which is byte-identical to its cache entry — skipping it would
        lose the range and leave the now-unqualified row in the snapshot
        forever.
        """
        table, rids, restriction, projection, snapshot, refresher, first = setup
        by_page = {}
        for rid in rids:
            by_page.setdefault(rid.page_no, []).append(rid)
        victim = by_page[0][-1]
        table.update(victim, {"v": 1000})  # was qualified, now is not
        second, _ = refresh_into(
            refresher, snapshot, first.new_snap_time, restriction, projection
        )
        assert second.pages_scanned == 2
        assert second.pages_skipped == table.heap.page_count - 2
        assert second.entries_sent >= 1
        assert victim not in snapshot.as_map()
        assert snapshot.as_map() == truth_map(table, 100)


class TestBaselineEquivalence:
    def script(self, table, rids):
        table.update(rids[1], {"v": 60})
        table.delete(rids[5])
        table.insert([7, "y" * 900])
        table.update(rids[9], {"v": 500})

    def run_mode(self, use_summaries, refreshes=3):
        db = Database("equiv", buffer_capacity=16)
        table, rids = build(db)
        restriction = Restriction.parse("v < 100", table.schema)
        projection = Projection(table.schema)
        snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
        refresher = DifferentialRefresher(
            table, use_page_summaries=use_summaries
        )
        snap_time = 0
        streams = []
        result, messages = refresh_into(
            refresher, snapshot, snap_time, restriction, projection
        )
        streams.append(messages)
        snap_time = result.new_snap_time
        self.script(table, rids)
        for _ in range(refreshes):
            result, messages = refresh_into(
                refresher, snapshot, snap_time, restriction, projection
            )
            streams.append(messages)
            snap_time = result.new_snap_time
        return streams, snapshot.as_map(), truth_map(table, 100)

    def test_streams_identical_with_and_without_summaries(self):
        streams_on, map_on, truth_on = self.run_mode(True)
        streams_off, map_off, truth_off = self.run_mode(False)
        assert streams_on == streams_off
        assert map_on == map_off == truth_on == truth_off


class TestCacheInvalidation:
    def test_restriction_change_clears_default_cache(self, setup):
        table, _, _, projection, _, refresher, first = setup
        other = Restriction.parse("v < 5", table.schema)
        snapshot = SnapshotTable(Database("remote2"), "s2", projection.schema)
        result, _ = refresh_into(
            refresher, snapshot, 0, other, projection
        )
        # New restriction: the qualified-address cache from the previous
        # restriction must not be reused (it would fast-forward LastQual
        # to addresses that do not qualify under this predicate).
        assert result.pages_scanned == table.heap.page_count
        assert snapshot.as_map() == truth_map(table, 5)
