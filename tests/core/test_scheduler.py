"""Periodic refresh scheduling and staleness accounting."""

import pytest

from repro.core.manager import SnapshotManager
from repro.core.scheduler import RefreshScheduler
from repro.errors import SnapshotError


@pytest.fixture
def world(db):
    table = db.create_table("t", [("v", "int")])
    rids = table.bulk_load([[i] for i in range(50)])
    manager = SnapshotManager(db)
    snapshot = manager.create_snapshot("s", "t", method="differential")
    scheduler = RefreshScheduler(manager)
    return db, table, rids, manager, snapshot, scheduler


class TestScheduling:
    def test_refresh_fires_every_k_ops(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=5)
        for i in range(12):
            table.update(rids[i], {"v": 1000 + i})
        assert entry.refreshes == 2  # at ops 5 and 10
        assert entry.pending == 2

    def test_flush_catches_stragglers(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=100)
        for i in range(7):
            table.update(rids[i], {"v": i})
        scheduler.flush()
        assert entry.refreshes == 1
        assert entry.pending == 0
        assert snapshot.as_map() == {
            rid: row.values for rid, row in table.scan(visible=True)
        }

    def test_only_relevant_tables_counted(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        other = db.create_table("other", [("x", "int")])
        entry = scheduler.schedule("s", every_ops=2)
        other.insert([1])
        other.insert([2])
        other.insert([3])
        assert entry.refreshes == 0
        assert entry.pending == 0

    def test_multi_op_transaction_counts_each_change(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=3)
        txn = db.txns.begin()
        table.update(rids[0], {"v": 1}, txn=txn)
        table.update(rids[1], {"v": 2}, txn=txn)
        table.update(rids[2], {"v": 3}, txn=txn)
        assert entry.refreshes == 0  # nothing until commit
        txn.commit()
        assert entry.refreshes == 1

    def test_aborted_transactions_ignored(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=1)
        txn = db.txns.begin()
        table.update(rids[0], {"v": 1}, txn=txn)
        txn.abort()
        assert entry.refreshes == 0

    def test_bad_period_rejected(self, world):
        scheduler = world[5]
        with pytest.raises(SnapshotError):
            scheduler.schedule("s", every_ops=0)

    def test_unknown_snapshot_rejected(self, world):
        scheduler = world[5]
        with pytest.raises(SnapshotError):
            scheduler.schedule("ghost", every_ops=5)

    def test_close_stops_observing(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=1)
        scheduler.close()
        table.update(rids[0], {"v": 9})
        assert entry.refreshes == 0


class TestFailedRefreshes:
    def test_down_link_skips_not_crashes(self, db):
        # The refresh runs inside the writer's commit hook; a dead link
        # must not fail the writer's transaction.
        from repro.net.channel import Link

        table = db.create_table("t", [("v", "int")])
        rids = table.bulk_load([[i] for i in range(10)])
        manager = SnapshotManager(db)
        link = Link()
        manager.create_snapshot("s", "t", method="differential", channel=link)
        scheduler = RefreshScheduler(manager)
        entry = scheduler.schedule("s", every_ops=2)
        link.go_down()
        table.update(rids[0], {"v": 100})
        table.update(rids[1], {"v": 101})  # period hit; commit must survive
        assert entry.refreshes == 0
        assert entry.failed_refreshes == 1
        assert entry.pending == 2  # kept, so recovery retries them
        assert scheduler.failed_refreshes == 1
        link.come_up()
        table.update(rids[2], {"v": 102})
        assert entry.refreshes == 1
        assert entry.pending == 0
        snap = manager.snapshot("s")
        assert snap.as_map() == {
            rid: row.values for rid, row in table.scan(visible=True)
        }

    def _coalesce_world(self, db):
        from repro.net.faults import FaultyLink

        table = db.create_table("t", [("v", "int")])
        rids = table.bulk_load([[i] for i in range(10)])
        manager = SnapshotManager(db)
        manager.create_snapshot("lead", "t", method="differential")
        link = FaultyLink()
        manager.create_snapshot(
            "rider", "t", method="differential", channel=link
        )
        scheduler = RefreshScheduler(manager, coalesce_window=3)
        lead = scheduler.schedule("lead", every_ops=4)
        rider = scheduler.schedule("rider", every_ops=6)
        return table, rids, manager, link, scheduler, lead, rider

    def test_failed_rider_is_rearmed_solo(self, db):
        # Regression: a rider pulled into a shared pass ahead of its own
        # deadline used to keep its pre-ride counter when the pass failed
        # for it, coasting past the window it was about to hit.  The
        # scheduler now re-arms the casualty solo inside the same hook.
        table, rids, manager, link, scheduler, lead, rider = (
            self._coalesce_world(db)
        )
        for i in range(3):
            table.update(rids[i], {"v": 100 + i})
        link.fail_at(0, 1)  # the group pass dies on the rider's Begin
        table.update(rids[3], {"v": 103})  # 4th op: lead due, rider rides
        assert lead.refreshes == 1 and lead.pending == 0
        assert rider.refreshes == 1 and rider.pending == 0
        assert rider.failed_refreshes == 0
        assert scheduler.rearmed_solo == 1
        assert scheduler.coalesced_refreshes == 1
        assert scheduler.failed_refreshes == 0
        snap = manager.snapshot("rider")
        assert snap.as_map() == {
            rid: row.values for rid, row in table.scan(visible=True)
        }

    def test_rider_rearm_failure_keeps_pending(self, db):
        table, rids, manager, link, scheduler, lead, rider = (
            self._coalesce_world(db)
        )
        for i in range(3):
            table.update(rids[i], {"v": 100 + i})
        link.fail_at(0, 10**9)  # both the pass and the solo re-arm die
        table.update(rids[3], {"v": 103})
        assert lead.refreshes == 1
        assert rider.refreshes == 0
        assert rider.failed_refreshes == 1
        assert rider.pending == 4  # kept, so the next period retries
        assert rider.last_failure is not None
        assert scheduler.rearmed_solo == 0
        assert scheduler.failed_refreshes == 1

    def test_retries_exhausted_also_skips(self, db):
        from repro.net.faults import FaultyLink
        from repro.net.retry import RetryPolicy

        table = db.create_table("t", [("v", "int")])
        rids = table.bulk_load([[i] for i in range(10)])
        manager = SnapshotManager(
            db, retry_policy=RetryPolicy(max_attempts=2, jitter=0.0)
        )
        link = FaultyLink(outages=[(0, 10**9)])
        manager.create_snapshot(
            "s", "t", method="differential", channel=link,
            initial_refresh=False,
        )
        scheduler = RefreshScheduler(manager)
        entry = scheduler.schedule("s", every_ops=1)
        table.update(rids[0], {"v": 100})  # no raise
        assert entry.failed_refreshes == 1
        assert entry.last_failure is not None


class TestStaleness:
    def test_multi_op_transaction_staleness_counts_each_op(self, world):
        # Regression: staleness used to be sampled once per *commit*, so
        # a 3-op transaction contributed one sample of 3 instead of the
        # per-operation ramp 1+2+3 — biasing A11's staleness axis low
        # for batched workloads.
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=100)
        txn = db.txns.begin()
        table.update(rids[0], {"v": 1}, txn=txn)
        table.update(rids[1], {"v": 2}, txn=txn)
        table.update(rids[2], {"v": 3}, txn=txn)
        txn.commit()
        assert entry.ops_observed == 3
        assert entry.staleness_area == 1 + 2 + 3
        assert entry.average_staleness == 2.0

    def test_batched_and_singleton_commits_accumulate_identically(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=100)
        txn = db.txns.begin()
        for i in range(4):
            table.update(rids[i], {"v": i}, txn=txn)
        txn.commit()
        batched_area = entry.staleness_area
        # Same number of ops as singleton commits, starting from the
        # same pending level, must add the same area shifted by it.
        for i in range(4):
            table.update(rids[10 + i], {"v": i})
        singleton_area = entry.staleness_area - batched_area
        assert batched_area == 1 + 2 + 3 + 4
        assert singleton_area == 5 + 6 + 7 + 8
    def test_average_staleness_grows_with_period(self, db):
        table = db.create_table("t", [("v", "int")])
        rids = table.bulk_load([[i] for i in range(50)])
        manager = SnapshotManager(db)
        manager.create_snapshot("fast", "t", method="differential")
        manager.create_snapshot("slow", "t", method="differential")
        scheduler = RefreshScheduler(manager)
        fast = scheduler.schedule("fast", every_ops=2)
        slow = scheduler.schedule("slow", every_ops=20)
        for i in range(40):
            table.update(rids[i % len(rids)], {"v": i})
        assert fast.average_staleness < slow.average_staleness
        assert fast.refreshes > slow.refreshes

    def test_coalescing_with_longer_period(self, db):
        # Hot-row updates: a long period ships fewer entries in total.
        table = db.create_table("t", [("v", "int")])
        rids = table.bulk_load([[i] for i in range(20)])
        manager = SnapshotManager(db)
        manager.create_snapshot("eager_s", "t", method="differential")
        manager.create_snapshot("lazy_s", "t", method="differential")
        scheduler = RefreshScheduler(manager)
        per_op = scheduler.schedule("eager_s", every_ops=1)
        batched = scheduler.schedule("lazy_s", every_ops=50)
        for i in range(50):
            table.update(rids[0], {"v": i})  # one hot row
        scheduler.flush()
        assert per_op.entries_shipped == 50
        assert batched.entries_shipped == 1  # coalesced


class TestFleetScale:
    """Regression: the per-commit hook must not walk the whole fleet.

    The original scheduler visited every scheduled entry on every
    observed commit — O(fleet) per op.  The registry's deadline heap
    makes the hook O(ops + newly_due log n), while keeping the staleness
    accounting byte-for-byte identical to the eager walk.
    """

    def test_10k_entries_constant_per_op_work(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=10)
        # A 10k-strong fleet sharing the scheduler's registry, none of
        # it due for ~forever: per-op work must not touch any of it.
        for i in range(10_000):
            scheduler.registry.register(f"ghost{i}", "t", every_ops=10**9)
        pops_before = scheduler.registry.stats["heap_pops"]
        for i in range(30):
            table.update(rids[i], {"v": i})
        # Only the real entry's deadline crossings popped the heap: 3
        # refresh firings at ops 10/20/30, regardless of fleet size.
        assert scheduler.registry.stats["heap_pops"] - pops_before == 3
        assert entry.refreshes == 3

    def test_10k_entries_staleness_byte_identical_to_eager_walk(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=7)
        for i in range(10_000):
            scheduler.registry.register(f"ghost{i}", "t", every_ops=10**9)
        # Eager reference: per-op pending ramp, reset at each firing.
        pending = area = 0
        for i in range(25):
            table.update(rids[i], {"v": i})
            pending += 1
            area += pending
            if pending == 7:
                pending = 0
            assert entry.pending == pending
            assert entry.staleness_area == area
        assert entry.ops_observed == 25
        # The ghosts' accounting is exact too, with zero per-op work.
        ghost = scheduler.registry.record("ghost42")
        assert ghost.pending == 25
        assert ghost.staleness_area == sum(range(1, 26))
