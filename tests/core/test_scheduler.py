"""Periodic refresh scheduling and staleness accounting."""

import pytest

from repro.core.manager import SnapshotManager
from repro.core.scheduler import RefreshScheduler
from repro.errors import SnapshotError


@pytest.fixture
def world(db):
    table = db.create_table("t", [("v", "int")])
    rids = table.bulk_load([[i] for i in range(50)])
    manager = SnapshotManager(db)
    snapshot = manager.create_snapshot("s", "t", method="differential")
    scheduler = RefreshScheduler(manager)
    return db, table, rids, manager, snapshot, scheduler


class TestScheduling:
    def test_refresh_fires_every_k_ops(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=5)
        for i in range(12):
            table.update(rids[i], {"v": 1000 + i})
        assert entry.refreshes == 2  # at ops 5 and 10
        assert entry.pending == 2

    def test_flush_catches_stragglers(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=100)
        for i in range(7):
            table.update(rids[i], {"v": i})
        scheduler.flush()
        assert entry.refreshes == 1
        assert entry.pending == 0
        assert snapshot.as_map() == {
            rid: row.values for rid, row in table.scan(visible=True)
        }

    def test_only_relevant_tables_counted(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        other = db.create_table("other", [("x", "int")])
        entry = scheduler.schedule("s", every_ops=2)
        other.insert([1])
        other.insert([2])
        other.insert([3])
        assert entry.refreshes == 0
        assert entry.pending == 0

    def test_multi_op_transaction_counts_each_change(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=3)
        txn = db.txns.begin()
        table.update(rids[0], {"v": 1}, txn=txn)
        table.update(rids[1], {"v": 2}, txn=txn)
        table.update(rids[2], {"v": 3}, txn=txn)
        assert entry.refreshes == 0  # nothing until commit
        txn.commit()
        assert entry.refreshes == 1

    def test_aborted_transactions_ignored(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=1)
        txn = db.txns.begin()
        table.update(rids[0], {"v": 1}, txn=txn)
        txn.abort()
        assert entry.refreshes == 0

    def test_bad_period_rejected(self, world):
        scheduler = world[5]
        with pytest.raises(SnapshotError):
            scheduler.schedule("s", every_ops=0)

    def test_unknown_snapshot_rejected(self, world):
        scheduler = world[5]
        with pytest.raises(SnapshotError):
            scheduler.schedule("ghost", every_ops=5)

    def test_close_stops_observing(self, world):
        db, table, rids, manager, snapshot, scheduler = world
        entry = scheduler.schedule("s", every_ops=1)
        scheduler.close()
        table.update(rids[0], {"v": 9})
        assert entry.refreshes == 0


class TestStaleness:
    def test_average_staleness_grows_with_period(self, db):
        table = db.create_table("t", [("v", "int")])
        rids = table.bulk_load([[i] for i in range(50)])
        manager = SnapshotManager(db)
        manager.create_snapshot("fast", "t", method="differential")
        manager.create_snapshot("slow", "t", method="differential")
        scheduler = RefreshScheduler(manager)
        fast = scheduler.schedule("fast", every_ops=2)
        slow = scheduler.schedule("slow", every_ops=20)
        for i in range(40):
            table.update(rids[i % len(rids)], {"v": i})
        assert fast.average_staleness < slow.average_staleness
        assert fast.refreshes > slow.refreshes

    def test_coalescing_with_longer_period(self, db):
        # Hot-row updates: a long period ships fewer entries in total.
        table = db.create_table("t", [("v", "int")])
        rids = table.bulk_load([[i] for i in range(20)])
        manager = SnapshotManager(db)
        manager.create_snapshot("eager_s", "t", method="differential")
        manager.create_snapshot("lazy_s", "t", method="differential")
        scheduler = RefreshScheduler(manager)
        per_op = scheduler.schedule("eager_s", every_ops=1)
        batched = scheduler.schedule("lazy_s", every_ops=50)
        for i in range(50):
            table.update(rids[0], {"v": i})  # one hot row
        scheduler.flush()
        assert per_op.entries_shipped == 50
        assert batched.entries_shipped == 1  # coalesced
