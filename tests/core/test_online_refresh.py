"""Writer-concurrent (chunked watermark) refresh through the manager.

The contract under test: ``refresh_online`` commits receiver state
identical to what a quiescent ``refresh`` of the *final* base table
would produce, no matter what committed writes interleave at chunk
boundaries — and with no interleaving, the emitted stream is
byte-for-byte the monolithic scan's.
"""

import pytest

from repro.core.manager import SnapshotManager
from repro.database import Database
from repro.errors import RefreshMethodError, SnapshotError


def build(n_rows=2000, **manager_kwargs):
    db = Database("hq", buffer_capacity=64)
    table = db.create_table("emp", [("name", "string"), ("salary", "int")])
    table.bulk_load([[f"e{i}", i % 20] for i in range(n_rows)])
    manager = SnapshotManager(db, **manager_kwargs)
    snap = manager.create_snapshot(
        "low", "emp", where="salary < 10", method="differential"
    )
    manager.refresh("low")
    return db, table, manager, snap


def truth(table):
    return {
        rid: (row[0], row[1])
        for rid, row in table.scan()
        if row[1] < 10
    }


def contents(snap):
    return {
        addr: tuple(values)[:2]
        for addr, values in snap.table.as_map().items()
    }


class TestQuiescent:
    def test_matches_truth(self):
        db, table, manager, snap = build()
        rids = list(table.heap.scan_rids())
        table.update(rids[3], {"salary": 5})
        table.delete(rids[7])
        table.insert(["n1", 2])
        result = manager.refresh_online("low", chunk_pages=2)
        assert result.chunks_scanned > 1
        assert result.interleaved_writes == 0
        assert result.pages_repaired == 0
        assert contents(snap) == truth(table)

    def test_stream_identical_to_monolithic(self):
        """Same history in two worlds: chunked == monolithic, byte-wise."""
        streams = {}
        for mode in ("chunked", "monolithic"):
            db, table, manager, snap = build(n_rows=600)
            rids = list(table.heap.scan_rids())
            table.update(rids[5], {"salary": 1})
            table.delete(rids[50])
            captured = []
            original = snap.table.apply

            def apply(message, _captured=captured, _original=original):
                _captured.append(message)
                _original(message)

            snap.table.apply = apply
            if mode == "chunked":
                manager.refresh_online("low", chunk_pages=1)
            else:
                manager.refresh("low")
            streams[mode] = captured
        chunked, monolithic = streams["chunked"], streams["monolithic"]
        assert [repr(m) for m in chunked] == [repr(m) for m in monolithic]
        assert sum(m.wire_size() for m in chunked) == sum(
            m.wire_size() for m in monolithic
        )


class TestRacingWriter:
    def test_boundary_writes_are_merged(self):
        db, table, manager, snap = build()
        counter = [0]

        def writer(chunk):
            table.insert([f"w{counter[0]}", 3])
            counter[0] += 1
            rids = list(table.heap.scan_rids())
            table.update(rids[0], {"salary": (counter[0] * 7) % 20})
            table.delete(rids[len(rids) // 2])

        result = manager.refresh_online(
            "low", chunk_pages=1, on_chunk_boundary=writer
        )
        assert counter[0] > 0  # the writer actually ran
        assert result.interleaved_writes > 0
        assert contents(snap) == truth(table)

    def test_lock_released_at_boundaries(self):
        db, table, manager, snap = build()
        windows = []

        def writer(chunk):
            # At a boundary the refresh must genuinely hold no lock on
            # the base table, or a real writer could never commit here.
            holders = db.locks.holders(("table", "emp"))
            windows.append(chunk)
            assert not any(
                owner == ("refresh", "low") for owner, _ in holders
            )

        manager.refresh_online("low", chunk_pages=1, on_chunk_boundary=writer)
        assert windows

    def test_repaired_pages_counted(self):
        db, table, manager, snap = build()
        scanned_rids = list(table.heap.scan_rids())

        def writer(chunk):
            # Dirty a page the scan has already passed.
            table.update(scanned_rids[0], {"salary": chunk % 20})

        result = manager.refresh_online(
            "low", chunk_pages=1, on_chunk_boundary=writer
        )
        assert result.pages_repaired >= 1
        assert contents(snap) == truth(table)

    def test_followup_refresh_heals_interleaved_annotations(self):
        """Interleaved inserts leave NULL annotations; the next pass fixes."""
        db, table, manager, snap = build()

        def writer(chunk):
            table.insert([f"late{chunk}", 4])

        manager.refresh_online("low", chunk_pages=1, on_chunk_boundary=writer)
        assert contents(snap) == truth(table)
        table.update(list(table.heap.scan_rids())[1], {"salary": 2})
        manager.refresh("low")
        assert contents(snap) == truth(table)

    def test_inserts_extending_heap_are_scanned(self):
        db, table, manager, snap = build(n_rows=300)

        def writer(chunk):
            for i in range(40):  # enough to append fresh pages
                table.insert([f"grow{chunk}-{i}", 1])

        manager.refresh_online("low", chunk_pages=1, on_chunk_boundary=writer)
        assert contents(snap) == truth(table)


class TestValidation:
    def test_chunk_pages_must_be_positive(self):
        db, table, manager, snap = build(n_rows=100)
        with pytest.raises(RefreshMethodError, match="chunk_pages"):
            manager.refresh_online("low", chunk_pages=0)

    def test_requires_differential_method(self):
        db = Database("hq")
        table = db.create_table("t", [("v", "int")])
        table.bulk_load([[i] for i in range(20)])
        manager = SnapshotManager(db)
        manager.create_snapshot("f", "t", method="full")
        with pytest.raises(SnapshotError, match="differential"):
            manager.refresh_online("f")

    def test_lock_not_leaked_on_error(self):
        db, table, manager, snap = build(n_rows=600)

        def boom(chunk):
            raise RuntimeError("writer exploded")

        with pytest.raises(RuntimeError):
            manager.refresh_online("low", chunk_pages=1, on_chunk_boundary=boom)
        # The refresh's lock must be gone; conflicts raise immediately in
        # this lock manager, so a fresh refresh succeeding proves it.
        manager.refresh("low")
        assert contents(snap) == truth(table)
