"""SnapshotRegistry: deadline buckets, staleness closed forms, claims.

The worker-death scenarios (satellite of the claim protocol): a worker
that claims a cohort and vanishes must neither strand its snapshots nor
let them refresh twice — lease expiry hands the cohort to the next
claimer, the epoch protocol guarantees the dead worker transmitted
nothing durable, and completion fencing keeps a zombie from
double-counting.
"""

import random

import pytest

from repro.core.manager import SnapshotManager
from repro.core.registry import SnapshotRegistry, _tri
from repro.database import Database
from repro.errors import ChannelError, SnapshotError
from repro.txn.clock import ManualClock


class TestDueTracking:
    def test_not_due_before_period(self):
        registry = SnapshotRegistry()
        registry.register("s", "t", every_ops=5)
        assert registry.observe("t", 4) == []
        assert registry.due() == []

    def test_due_at_period(self):
        registry = SnapshotRegistry()
        registry.register("s", "t", every_ops=5)
        due = registry.observe("t", 5)
        assert [r.name for r in due] == ["s"]
        assert due[0].pending == 5

    def test_refresh_rearms(self):
        registry = SnapshotRegistry()
        registry.register("s", "t", every_ops=3)
        registry.observe("t", 3)
        registry.mark_refreshed("s", shipped=7)
        record = registry.record("s")
        assert record.pending == 0
        assert record.refreshes == 1
        assert record.entries_shipped == 7
        assert registry.due() == []
        assert [r.name for r in registry.observe("t", 3)] == ["s"]

    def test_failed_refresh_stays_due(self):
        registry = SnapshotRegistry()
        registry.register("s", "t", every_ops=2)
        registry.observe("t", 2)
        error = RuntimeError("link down")
        registry.mark_failed("s", error)
        record = registry.record("s")
        assert record.failed_refreshes == 1
        assert record.last_failure is error
        assert record.pending == 2
        # Still due: the next relevant commit retries it.
        assert [r.name for r in registry.observe("t", 1)] == ["s"]

    def test_observe_unknown_base_is_noop(self):
        registry = SnapshotRegistry()
        assert registry.observe("ghost", 10) == []

    def test_unregister_tombstones(self):
        registry = SnapshotRegistry()
        registry.register("s", "t", every_ops=2)
        registry.unregister("s")
        assert registry.observe("t", 10) == []
        assert "s" not in registry
        assert len(registry) == 0

    def test_reregister_resets(self):
        registry = SnapshotRegistry()
        registry.register("s", "t", every_ops=2)
        registry.observe("t", 2)
        registry.register("s", "t", every_ops=4)
        assert registry.record("s").pending == 0
        assert registry.due() == []

    def test_rejects_bad_period(self):
        with pytest.raises(SnapshotError):
            SnapshotRegistry().register("s", "t", every_ops=0)

    def test_near_due_matches_scheduler_predicate(self):
        registry = SnapshotRegistry()
        registry.register("close", "t", every_ops=10)
        registry.register("far", "t", every_ops=100)
        registry.register("idle", "u", every_ops=10)
        registry.observe("t", 8)
        names = [r.name for r in registry.near_due("t", window=2)]
        assert names == ["close"]
        assert registry.near_due("t", window=2, exclude=("close",)) == []


class TestStalenessAccounting:
    def test_closed_form_matches_eager_loop(self):
        """The lazy triangular form reproduces the eager per-op walk."""
        registry = SnapshotRegistry()
        fleet = [("a", 3), ("b", 7), ("c", 5)]
        for name, every in fleet:
            registry.register(name, "t", every_ops=every)
        # Eager reference: the original scheduler's accounting.
        eager = {name: {"pending": 0, "area": 0, "ops": 0} for name, _ in fleet}
        rng = random.Random(42)
        for _ in range(200):
            k = rng.randint(1, 4)
            due = registry.observe("t", k)
            for state in eager.values():
                for _ in range(k):
                    state["pending"] += 1
                    state["area"] += state["pending"]
                state["ops"] += k
            for record in due:
                registry.mark_refreshed(record.name)
                eager[record.name]["pending"] = 0
            for name, _ in fleet:
                record = registry.record(name)
                assert record.pending == eager[name]["pending"]
                assert record.staleness_area == eager[name]["area"]
                assert record.ops_observed == eager[name]["ops"]

    def test_average_staleness(self):
        registry = SnapshotRegistry()
        registry.register("s", "t", every_ops=100)
        assert registry.record("s").average_staleness == 0.0
        registry.observe("t", 3)
        # Area 1+2+3 over 3 ops.
        assert registry.record("s").average_staleness == pytest.approx(2.0)

    def test_tri(self):
        assert _tri(0) == 0
        assert _tri(4) == 10


class TestScaling:
    def test_per_op_cost_independent_of_fleet_size(self):
        """10k registered snapshots: observing ops touches no heap entry
        until a deadline is actually crossed."""
        registry = SnapshotRegistry()
        for i in range(10_000):
            registry.register(f"s{i}", "t", every_ops=1_000_000)
        pushes = registry.stats["heap_pushes"]
        assert pushes == 10_000
        for _ in range(1_000):
            registry.observe("t", 1)
        assert registry.stats["heap_pops"] == 0
        assert registry.stats["ops_observed"] == 1_000
        # And the accounting is still exact for every member.
        record = registry.record("s123")
        assert record.pending == 1_000
        assert record.staleness_area == _tri(1_000)

    def test_due_work_proportional_to_due_count(self):
        registry = SnapshotRegistry()
        for i in range(1_000):
            registry.register(f"s{i}", "t", every_ops=5 if i < 10 else 10_000)
        due = registry.observe("t", 5)
        assert len(due) == 10
        # Only the crossed deadlines were popped.
        assert registry.stats["heap_pops"] == 10


class TestClaimProtocol:
    def _registry(self, lease=100):
        clock = ManualClock()
        registry = SnapshotRegistry(clock=clock, lease=lease, cohort_size=8)
        return registry, clock

    def _register_due(self, registry, n=4, base="t", every=2):
        for i in range(n):
            registry.register(f"s{i}", base, every_ops=every)
        registry.observe(base, every)

    def test_claim_takes_whole_cohort(self):
        registry, clock = self._registry()
        self._register_due(registry)
        claim = registry.claim_cohort("w1")
        assert sorted(claim.members) == ["s0", "s1", "s2", "s3"]
        assert claim.state == "live"
        assert registry.due() == []

    def test_one_live_claim_per_base(self):
        registry, clock = self._registry()
        for i in range(20):
            registry.register(f"s{i}", "t", every_ops=2)
        registry.observe("t", 2)
        first = registry.claim_cohort("w1", max_size=4)
        assert first is not None
        # 16 due snapshots remain, but their base is busy.
        assert registry.claim_cohort("w2", max_size=4) is None
        registry.complete(first)
        assert registry.claim_cohort("w2", max_size=4) is not None

    def test_distinct_bases_claim_concurrently(self):
        registry, clock = self._registry()
        self._register_due(registry, n=2, base="t1")
        for i in range(2):
            registry.register(f"u{i}", "t2", every_ops=2)
        registry.observe("t2", 2)
        a = registry.claim_cohort("w1")
        b = registry.claim_cohort("w2")
        assert a is not None and b is not None
        assert a.cohort.key.base_table != b.cohort.key.base_table

    def test_complete_rearms_members(self):
        registry, clock = self._registry()
        self._register_due(registry, n=2)
        claim = registry.claim_cohort("w1")
        assert registry.complete(claim, shipped={"s0": 3, "s1": 4})
        assert registry.record("s0").refreshes == 1
        assert registry.record("s0").entries_shipped == 3
        assert registry.record("s0").pending == 0
        assert registry.due() == []

    def test_complete_with_failures_requeues(self):
        registry, clock = self._registry()
        self._register_due(registry, n=2)
        claim = registry.claim_cohort("w1")
        boom = RuntimeError("boom")
        registry.complete(claim, shipped={"s0": 1}, failed={"s1": boom})
        assert registry.record("s0").refreshes == 1
        assert registry.record("s1").refreshes == 0
        assert registry.record("s1").failed_refreshes == 1
        assert [r.name for r in registry.due()] == ["s1"]

    def test_release_requeues_unrefreshed(self):
        registry, clock = self._registry()
        self._register_due(registry, n=2)
        claim = registry.claim_cohort("w1")
        assert registry.release(claim)
        assert sorted(r.name for r in registry.due()) == ["s0", "s1"]
        assert registry.record("s0").refreshes == 0

    def test_lease_expiry_reclaims(self):
        registry, clock = self._registry(lease=100)
        self._register_due(registry)
        dead = registry.claim_cohort("w-dead")
        assert registry.claim_cohort("w2") is None  # base busy
        clock.advance(101)
        reclaimed = registry.claim_cohort("w2")
        assert reclaimed is not None
        assert sorted(reclaimed.members) == sorted(dead.members)
        assert dead.state == "expired"
        assert registry.stats["claims_expired"] == 1

    def test_renew_extends_lease(self):
        registry, clock = self._registry(lease=100)
        self._register_due(registry)
        claim = registry.claim_cohort("w1")
        clock.advance(90)
        assert registry.renew(claim)
        clock.advance(90)
        # 180 ticks total but renewed at 90: still live.
        assert registry.claim_cohort("w2") is None
        assert claim.state == "live"

    def test_zombie_complete_is_fenced(self):
        """A worker finishing after its lease expired changes nothing."""
        registry, clock = self._registry(lease=10)
        self._register_due(registry, n=2)
        zombie = registry.claim_cohort("w-zombie")
        clock.advance(11)
        live = registry.claim_cohort("w2")
        registry.complete(live, shipped={"s0": 5, "s1": 5})
        refreshes = registry.record("s0").refreshes
        assert not registry.complete(zombie, shipped={"s0": 99, "s1": 99})
        assert registry.record("s0").refreshes == refreshes
        assert registry.record("s0").entries_shipped == 5
        assert registry.stats["completes_fenced"] == 1


def _fleet_world(workers_bases=2, per_base=3):
    """A database with several base tables and differential snapshots."""
    db = Database("fleet", clock=ManualClock(), buffer_capacity=64)
    manager = SnapshotManager(db)
    registry = SnapshotRegistry(clock=db.clock, lease=500, cohort_size=8)
    tables = {}
    for b in range(workers_bases):
        name = f"t{b}"
        table = db.create_table(name, [("v", "int"), ("w", "int")])
        table.bulk_load([[i, i * 2] for i in range(40)])
        tables[name] = table
        for s in range(per_base):
            snap_name = f"{name}_s{s}"
            manager.create_snapshot(
                snap_name, name, where="v >= 0", method="differential"
            )
            handle = manager.snapshot(snap_name)
            registry.register(
                snap_name, name, every_ops=1, restriction=handle.restriction
            )
    return db, manager, registry, tables


def _truth(table, where=lambda v: True):
    return {
        rid: row.values for rid, row in table.scan(visible=True)
        if where(row.values[0])
    }


def _dirty(registry, tables, ops=5):
    for name, table in tables.items():
        rids = [rid for rid, _ in table.scan(visible=True)]
        for i in range(ops):
            table.update(rids[i], {"v": 1000 + i})
        registry.observe(name, ops)


class TestDrain:
    """Manager-level claim-execute-complete loops (serial + thread pool)."""

    @pytest.mark.parametrize("workers", [1, 3])
    def test_drain_refreshes_everything_exactly_once(self, workers):
        db, manager, registry, tables = _fleet_world(workers_bases=3, per_base=2)
        _dirty(registry, tables)
        before = {
            name: manager.snapshot(name).info.refresh_count
            for name in list(registry._records)
        }
        drain = manager.drain_registry(registry, workers=workers)
        assert drain.refreshed == 6
        assert drain.errors == {}
        assert drain.worker_errors == {}
        for name in before:
            handle = manager.snapshot(name)
            assert handle.info.refresh_count == before[name] + 1
            assert handle.as_map() == _truth(tables[handle.info.base_table])
        assert registry.due() == []
        assert registry.claims() == []

    @pytest.mark.parametrize("workers", [1, 3])
    def test_worker_death_mid_cohort_reclaimed_exactly_once(self, workers):
        """Dead worker → lease expiry → reclaim; one committed refresh,
        nothing transmitted by the dead worker."""
        db, manager, registry, tables = _fleet_world(workers_bases=2, per_base=2)
        _dirty(registry, tables)
        # The dead worker claims t0's cohort and vanishes mid-cohort:
        # its partial attempt transmitted nothing durable (the epoch
        # protocol aborts uncommitted epochs), modeled here by the claim
        # simply never completing.
        dead = registry.claim_cohort("w-dead")
        assert dead is not None
        dead_names = sorted(dead.members)
        receivers_before = {
            name: manager.snapshot(name).as_map() for name in dead_names
        }
        counts_before = {
            name: manager.snapshot(name).info.refresh_count
            for name in dead_names
        }
        # While the lease is live, a drain serves every OTHER base.
        drain1 = manager.drain_registry(registry, workers=workers)
        for name in dead_names:
            assert manager.snapshot(name).as_map() == receivers_before[name]
            assert manager.snapshot(name).info.refresh_count == counts_before[name]
        # Lease expires; the next drain reclaims and refreshes the
        # cohort exactly once.
        db.clock.advance(501)
        drain2 = manager.drain_registry(registry, workers=workers)
        assert drain2.refreshed == len(dead_names)
        for name in dead_names:
            handle = manager.snapshot(name)
            assert handle.info.refresh_count == counts_before[name] + 1
            assert handle.as_map() == _truth(tables[handle.info.base_table])
        assert registry.stats["claims_expired"] == 1
        assert registry.due() == []
        assert drain1.worker_errors == {} and drain2.worker_errors == {}

    def test_crashing_refresh_releases_claim_and_requeues(self):
        """A worker whose pass dies on an unexpected error releases its
        claim: members stay due, failure recorded, nothing committed."""
        db, manager, registry, tables = _fleet_world(workers_bases=1, per_base=2)
        _dirty(registry, tables)
        names = sorted(r.name for r in registry.due())
        crashes = {"left": 1}

        original = manager.refresh_cohort

        def crashing(claim, retry=None):
            if crashes["left"]:
                crashes["left"] -= 1
                raise RuntimeError("worker crashed mid-cohort")
            return original(claim, retry=retry)

        manager.refresh_cohort = crashing
        try:
            drain = manager.drain_registry(registry, workers=1)
        finally:
            manager.refresh_cohort = original
        assert list(drain.worker_errors) == ["worker-0"]
        assert drain.refreshed == 0
        for name in names:
            record = registry.record(name)
            assert record.failed_refreshes == 1
            assert record.refreshes == 0
        assert sorted(r.name for r in registry.due()) == names
        # The next drain heals the fleet.
        drain2 = manager.drain_registry(registry, workers=1)
        assert drain2.refreshed == len(names)
        for name in names:
            handle = manager.snapshot(name)
            assert handle.as_map() == _truth(tables[handle.info.base_table])

    def test_dead_worker_mid_stream_commits_nothing(self):
        """Sharper death model: the worker dies *inside* the refresh
        stream (channel drops mid-epoch).  The receiver's staged epoch
        is aborted — zero durable effect — and the reclaiming worker's
        refresh is the only committed one."""
        db, manager, registry, tables = _fleet_world(workers_bases=1, per_base=1)
        _dirty(registry, tables)
        (name,) = [r.name for r in registry.due()]
        handle = manager.snapshot(name)
        receiver_before = handle.as_map()
        claim = registry.claim_cohort("w-dead")

        channel = handle.channel
        original_send = channel.send
        sent = {"n": 0}

        def dying_send(message):
            sent["n"] += 1
            if sent["n"] > 2:
                raise ChannelError("process killed mid-stream")
            return original_send(message)

        channel.send = dying_send
        try:
            outcomes = manager.refresh_cohort(claim)
        finally:
            channel.send = original_send
        assert list(outcomes.errors) == [name]
        assert sent["n"] > 2  # it really died mid-stream
        # Death mid-stream: nothing durable reached the receiver.
        assert handle.as_map() == receiver_before
        assert handle.info.refresh_count == 1  # the initial load only
        # Lease expires; the cohort is reclaimed and refreshed once.
        db.clock.advance(501)
        drain = manager.drain_registry(registry, workers=1)
        assert drain.refreshed == 1
        assert handle.info.refresh_count == 2
        assert handle.as_map() == _truth(tables[handle.info.base_table])

    def test_max_claims_bounds_drain(self):
        db, manager, registry, tables = _fleet_world(workers_bases=3, per_base=1)
        _dirty(registry, tables)
        drain = manager.drain_registry(registry, workers=1, max_claims=2)
        assert drain.claims == 2
        assert len(registry.due()) == 1

    def test_drain_rejects_zero_workers(self):
        db, manager, registry, tables = _fleet_world(workers_bases=1, per_base=1)
        with pytest.raises(SnapshotError):
            manager.drain_registry(registry, workers=0)
