"""Figure 7's fix-up pass against constructed scenarios."""

import pytest

from repro.core.fixup import base_fixup
from repro.errors import RefreshMethodError
from repro.relation.types import NULL
from repro.storage.rid import Rid


@pytest.fixture
def table(db):
    t = db.create_table("t", [("v", "int")], annotations="lazy")
    t.bulk_load([[i] for i in range(8)])
    base_fixup(t)  # settle: chain + stamp everything
    return t


def rids(table):
    return [rid for rid, _ in table.scan()]


class TestClassification:
    def test_clean_table_needs_no_writes(self, table):
        result = base_fixup(table)
        assert result.writes == 0

    def test_insert_detected(self, db, table):
        new = table.insert([100])
        time_before = db.clock.read()
        result = base_fixup(table)
        assert result.inserted == 1
        prev, ts = table.annotations(new)
        assert prev is not NULL and ts > time_before

    def test_update_detected(self, table):
        target = rids(table)[3]
        table.update(target, {"v": -1})
        result = base_fixup(table)
        assert result.updated == 1
        _, ts = table.annotations(target)
        assert ts == result.fixup_time

    def test_deletion_detected_at_successor(self, table):
        all_rids = rids(table)
        table.delete(all_rids[2])
        result = base_fixup(table)
        assert result.deletions_detected == 1
        prev, ts = table.annotations(all_rids[3])
        assert prev == all_rids[1]
        assert ts == result.fixup_time

    def test_consecutive_deletions_detected_once(self, table):
        all_rids = rids(table)
        table.delete(all_rids[2])
        table.delete(all_rids[3])
        table.delete(all_rids[4])
        result = base_fixup(table)
        assert result.deletions_detected == 1
        prev, _ = table.annotations(all_rids[5])
        assert prev == all_rids[1]

    def test_trailing_deletions_invisible_to_fixup(self, table):
        all_rids = rids(table)
        table.delete(all_rids[-1])
        result = base_fixup(table)
        # No successor exists; the refresh's EndOfScan covers it instead.
        assert result.deletions_detected == 0
        assert result.writes == 0

    def test_insert_before_entry_repoints_without_stamp(self, db, table):
        all_rids = rids(table)
        table.delete(all_rids[2])
        base_fixup(table)  # successor now points at all_rids[1]
        reused = table.insert([55])
        assert reused == all_rids[2]  # first-fit brings the address back
        result = base_fixup(table)
        assert result.inserted == 1
        assert result.repointed_only == 1
        prev, ts = table.annotations(all_rids[3])
        assert prev == reused
        assert ts < result.fixup_time  # not stamped: nothing was deleted

    def test_address_reuse_after_unnoticed_delete(self, db, table):
        # Delete and reinsert at the same address between fix-ups: the
        # successor's PrevAddr names the reused address, but ExpectPrev
        # differs because the reborn entry counts as newly inserted.
        all_rids = rids(table)
        table.delete(all_rids[2])
        reused = table.insert([77])
        assert reused == all_rids[2]
        result = base_fixup(table)
        assert result.inserted == 1
        assert result.deletions_detected == 1
        _, successor_ts = table.annotations(all_rids[3])
        assert successor_ts == result.fixup_time


class TestEdgeCases:
    def test_empty_table(self, db):
        t = db.create_table("empty", [("v", "int")], annotations="lazy")
        result = base_fixup(t)
        assert result.scanned == 0

    def test_single_entry(self, db):
        t = db.create_table("one", [("v", "int")], annotations="lazy")
        rid = t.insert([1])
        result = base_fixup(t)
        assert result.inserted == 1
        prev, _ = t.annotations(rid)
        assert prev == Rid.BEGIN

    def test_delete_first_entry(self, table):
        all_rids = rids(table)
        table.delete(all_rids[0])
        result = base_fixup(table)
        assert result.deletions_detected == 1
        prev, _ = table.annotations(all_rids[1])
        assert prev == Rid.BEGIN

    def test_requires_lazy_mode(self, db):
        t = db.create_table("plain", [("v", "int")])
        with pytest.raises(RefreshMethodError):
            base_fixup(t)
        e = db.create_table("eager", [("v", "int")], annotations="eager")
        with pytest.raises(RefreshMethodError):
            base_fixup(e)

    def test_explicit_fixup_time(self, table):
        target = rids(table)[0]
        table.update(target, {"v": 9})
        result = base_fixup(table, fixup_time=123456)
        assert result.fixup_time == 123456
        _, ts = table.annotations(target)
        assert ts == 123456

    def test_mixed_batch(self, db, table):
        all_rids = rids(table)
        table.update(all_rids[1], {"v": -1})
        table.delete(all_rids[4])
        table.insert([200])  # reuses all_rids[4]
        new_tail = table.insert([201])  # fresh address at the end
        result = base_fixup(table)
        assert result.inserted == 2
        assert result.updated == 1
        assert result.deletions_detected == 1
        # A second pass confirms everything settled.
        assert base_fixup(table).writes == 0
