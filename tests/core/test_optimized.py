"""The invited optimizations: correctness preserved, costs reduced."""

import random

import pytest

from repro.core.differential import DifferentialRefresher
from repro.core.messages import DeleteRangeMessage, EntryMessage
from repro.core.optimized import OptimizedDifferentialRefresher
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction


def build(db, rows, where="v < 100", **flags):
    table = db.create_table(
        "base", [("name", "string"), ("v", "int")], annotations="lazy"
    )
    table.bulk_load(rows)
    restriction = Restriction.parse(where, table.schema)
    projection = Projection(table.schema)
    snapshot = SnapshotTable(Database("remote"), "snap", projection.schema)
    refresher = DifferentialRefresher(table, **flags)
    state = {"snap_time": 0}

    def refresh():
        messages = []

        def deliver(message):
            messages.append(message)
            snapshot.apply(message)

        result = refresher.refresh(
            state["snap_time"], restriction, projection, deliver
        )
        state["snap_time"] = result.new_snap_time
        return result, messages

    def converged():
        expected = {
            rid: row.values
            for rid, row in table.scan(visible=True)
            if row.values[1] < 100
        }
        assert snapshot.as_map() == expected

    return table, refresh, converged


class TestOptimizeDeletes:
    def test_unchanged_survivor_sent_as_delete_range(self, db):
        table, refresh, converged = build(
            db, [["a", 10], ["b", 10], ["c", 10]], optimize_deletes=True
        )
        refresh()
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[1])
        result, messages = refresh()
        ranges = [m for m in messages if isinstance(m, DeleteRangeMessage)]
        entries = [m for m in messages if isinstance(m, EntryMessage)]
        assert len(ranges) == 1 and len(entries) == 0
        assert (ranges[0].lo, ranges[0].hi) == (rids[0], rids[2])
        converged()

    def test_changed_survivor_still_sent_in_full(self, db):
        table, refresh, converged = build(
            db, [["a", 10], ["b", 10], ["c", 10]], optimize_deletes=True
        )
        refresh()
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[1])
        table.update(rids[2], {"v": 11})  # survivor itself changed
        result, messages = refresh()
        entries = [m for m in messages if isinstance(m, EntryMessage)]
        assert [m.addr for m in entries] == [rids[2]]
        converged()

    def test_same_entry_count_fewer_bytes(self, db):
        rows = [[f"name-{i:04d}", 10] for i in range(60)]
        baseline_table, baseline_refresh, _ = build(db, rows)
        baseline_refresh()
        optimized_db = Database("opt")
        opt_table, opt_refresh, opt_converged = build(
            optimized_db, rows, optimize_deletes=True
        )
        opt_refresh()
        for t in (baseline_table, opt_table):
            victims = [rid for rid, _ in t.scan()][10:30:2]
            for rid in victims:
                t.delete(rid)
        base_result, _ = baseline_refresh()
        opt_result, _ = opt_refresh()
        assert opt_result.entries_sent == base_result.entries_sent
        assert opt_result.bytes_sent < base_result.bytes_sent
        opt_converged()


class TestSuppressPureInserts:
    def test_unqualified_insert_no_longer_forces_successor(self, db):
        table, refresh, converged = build(
            db, [["a", 10], ["c", 10]], suppress_pure_inserts=True
        )
        refresh()
        table.insert(["b", 5000])  # appended after c, unqualified
        table_rids = [rid for rid, _ in table.scan()]
        result, messages = refresh()
        # Baseline would retransmit nothing here anyway (insert is last);
        # construct the middle-gap case explicitly instead:
        del table_rids
        table2_db = Database("two")
        table2, refresh2, converged2 = build(
            table2_db, [["a", 10], ["z", 5000], ["c", 10]],
            suppress_pure_inserts=True,
        )
        refresh2()
        rids2 = [rid for rid, _ in table2.scan()]
        table2.delete(rids2[1])
        refresh2()
        table2.insert(["ghost", 7777])  # reuses rids2[1]: pure insert
        result2, messages2 = refresh2()
        entries = [m for m in messages2 if isinstance(m, EntryMessage)]
        assert entries == []  # baseline would have resent "c"
        converged2()

    def test_baseline_does_retransmit(self, db):
        table, refresh, converged = build(
            db, [["a", 10], ["z", 5000], ["c", 10]]
        )
        refresh()
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[1])
        refresh()
        table.insert(["ghost", 7777])
        result, messages = refresh()
        entries = [m for m in messages if isinstance(m, EntryMessage)]
        assert [m.addr for m in entries] == [rids[2]]
        converged()

    def test_address_reuse_deletion_still_detected(self, db):
        # The soundness argument: reuse of a *qualified* entry's address
        # by an unqualified insert must still purge the snapshot entry.
        table, refresh, converged = build(
            db, [["a", 10], ["b", 10], ["c", 10]], suppress_pure_inserts=True
        )
        refresh()
        rids = [rid for rid, _ in table.scan()]
        table.delete(rids[1])
        reborn = table.insert(["ghost", 9999])
        assert reborn == rids[1]
        result, _ = refresh()
        converged()


class TestOptimizedEquivalence:
    def test_randomized_equivalence_with_baseline(self):
        """Optimized variants always produce the same snapshot contents."""
        rng = random.Random(23)
        rows = [[f"r{i}", rng.randrange(200)] for i in range(40)]
        plain_db, opt_db = Database("plain"), Database("opt")
        table_a, refresh_a, converged_a = build(plain_db, list(rows))
        opt_table = opt_db.create_table(
            "base", [("name", "string"), ("v", "int")], annotations="lazy"
        )
        opt_table.bulk_load(rows)
        restriction = Restriction.parse("v < 100", opt_table.schema)
        projection = Projection(opt_table.schema)
        opt_snapshot = SnapshotTable(Database("r2"), "s2", projection.schema)
        opt_refresher = OptimizedDifferentialRefresher(opt_table)
        opt_time = [0]

        def refresh_b():
            def deliver(message):
                opt_snapshot.apply(message)

            result = opt_refresher.refresh(
                opt_time[0], restriction, projection, deliver
            )
            opt_time[0] = result.new_snap_time
            return result

        refresh_a()
        refresh_b()
        for _ in range(6):
            ops = []
            live_a = [rid for rid, _ in table_a.scan()]
            for _ in range(12):
                roll = rng.random()
                if roll < 0.25 and len(live_a) > 3:
                    index = rng.randrange(len(live_a))
                    ops.append(("delete", index, None))
                elif roll < 0.7:
                    ops.append(
                        ("update", rng.randrange(len(live_a)), rng.randrange(200))
                    )
                else:
                    ops.append(("insert", None, rng.randrange(200)))
            for t in (table_a, opt_table):
                live = [rid for rid, _ in t.scan()]
                for op, index, value in ops:
                    if op == "delete" and index < len(live):
                        t.delete(live.pop(index))
                    elif op == "update" and live:
                        target = live[min(index or 0, len(live) - 1)]
                        t.update(target, {"v": value})
                    elif op == "insert":
                        live.append(t.insert(["x", value]))
            refresh_a()
            refresh_b()
            converged_a()
            expected = {
                rid: row.values
                for rid, row in opt_table.scan(visible=True)
                if row.values[1] < 100
            }
            assert opt_snapshot.as_map() == expected
