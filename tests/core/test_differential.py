"""The combined differential refresh: scenario coverage.

Each test drives the full base-table → channel → snapshot pipeline and
checks both the transmitted traffic and the resulting snapshot contents
against ground truth (re-evaluating the restriction over the table).
"""

import pytest

from repro.core.differential import DifferentialRefresher, base_refresh
from repro.core.fixup import base_fixup
from repro.core.messages import EntryMessage
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.errors import RefreshMethodError
from repro.expr.predicate import Projection, Restriction


class Pipeline:
    """One base table + one differential snapshot, refreshable at will."""

    def __init__(self, db, where="v < 100", mode="lazy", **flags):
        self.db = db
        self.table = db.create_table(
            "base", [("name", "string"), ("v", "int")], annotations=mode
        )
        self.restriction = Restriction.parse(where, self.table.schema)
        self.projection = Projection(self.table.schema)
        self.snapshot = SnapshotTable(
            Database("remote"), "snap", self.projection.schema
        )
        self.refresher = DifferentialRefresher(self.table, **flags)
        self.snap_time = 0

    def load(self, rows):
        if self.table.annotation_mode == "eager":
            return [self.table.insert(row) for row in rows]
        return self.table.bulk_load(rows)

    def refresh(self):
        messages = []

        def deliver(message):
            messages.append(message)
            self.snapshot.apply(message)

        result = self.refresher.refresh(
            self.snap_time, self.restriction, self.projection, deliver
        )
        self.snap_time = result.new_snap_time
        return result, messages

    def truth(self):
        return {
            rid: row.values
            for rid, row in self.table.scan()
            if self.restriction(tuple(row.values) + (None, None))
        }

    def assert_converged(self):
        expected = {
            rid: row.values
            for rid, row in self.table.scan(visible=True)
            if self.restriction(row.values + (None, None))
        }
        assert self.snapshot.as_map() == expected


@pytest.fixture
def pipe(db):
    pipeline = Pipeline(db)
    pipeline.load([[f"r{i}", i * 10] for i in range(20)])  # v: 0..190
    pipeline.refresh()  # initial population
    return pipeline


def rids(pipe):
    return [rid for rid, _ in pipe.table.scan()]


class TestInitialPopulation:
    def test_first_refresh_ships_all_qualified(self, db):
        pipeline = Pipeline(db)
        pipeline.load([[f"r{i}", i * 10] for i in range(20)])
        result, _ = pipeline.refresh()
        assert result.entries_sent == 10  # v in {0..90}
        pipeline.assert_converged()

    def test_empty_table_refresh(self, db):
        pipeline = Pipeline(db)
        result, messages = pipeline.refresh()
        assert result.entries_sent == 0
        assert len(pipeline.snapshot) == 0

    def test_quiescent_refresh_sends_no_entries(self, pipe):
        result, _ = pipe.refresh()
        assert result.entries_sent == 0
        assert result.fixup_writes == 0


class TestUpdates:
    def test_qualified_update_ships_one_entry(self, pipe):
        target = rids(pipe)[3]  # v=30, qualified
        pipe.table.update(target, {"v": 35})
        result, messages = pipe.refresh()
        entries = [m for m in messages if isinstance(m, EntryMessage)]
        assert [m.addr for m in entries] == [target]
        pipe.assert_converged()

    def test_update_out_of_qualification(self, pipe):
        target = rids(pipe)[3]
        pipe.table.update(target, {"v": 500})
        result, _ = pipe.refresh()
        pipe.assert_converged()
        assert pipe.snapshot.lookup(target) is None

    def test_update_into_qualification(self, pipe):
        target = rids(pipe)[15]  # v=150, unqualified
        pipe.table.update(target, {"v": 50})
        result, messages = pipe.refresh()
        assert pipe.snapshot.lookup(target).values == ("r15", 50)
        pipe.assert_converged()

    def test_unqualified_to_unqualified_forces_successor(self, pipe):
        # An update among unqualified entries "may have qualified
        # before": the next qualified entry is retransmitted.
        target = rids(pipe)[15]
        pipe.table.update(target, {"v": 160})
        result, _ = pipe.refresh()
        # rids 10..19 are unqualified; there is no qualified entry after
        # 15, so only the EndOfScan covers it: zero entries.
        assert result.entries_sent == 0
        pipe.assert_converged()

    def test_unqualified_update_before_qualified_entry(self, db):
        pipeline = Pipeline(db)
        loaded = pipeline.load([["a", 10], ["b", 500], ["c", 20]])
        pipeline.refresh()
        pipeline.table.update(loaded[1], {"v": 600})  # still unqualified
        result, messages = pipeline.refresh()
        entries = [m for m in messages if isinstance(m, EntryMessage)]
        # Superfluous but necessary: "c" is retransmitted to clear the gap.
        assert [m.addr for m in entries] == [loaded[2]]
        pipeline.assert_converged()


class TestDeletes:
    def test_delete_qualified_entry(self, pipe):
        target = rids(pipe)[4]
        pipe.table.delete(target)
        result, _ = pipe.refresh()
        assert pipe.snapshot.lookup(target) is None
        pipe.assert_converged()

    def test_delete_at_end_of_table(self, pipe):
        all_rids = rids(pipe)
        for rid in all_rids[-3:]:
            pipe.table.delete(rid)
        result, _ = pipe.refresh()
        pipe.assert_converged()

    def test_delete_everything(self, pipe):
        for rid in rids(pipe):
            pipe.table.delete(rid)
        result, _ = pipe.refresh()
        assert len(pipe.snapshot) == 0
        assert result.entries_sent == 0  # EndOfScan does all the work

    def test_delete_run_covered_by_one_entry(self, db):
        pipeline = Pipeline(db)
        loaded = pipeline.load([[f"r{i}", 10] for i in range(10)])
        pipeline.refresh()
        for rid in loaded[2:7]:
            pipeline.table.delete(rid)
        result, messages = pipeline.refresh()
        entries = [m for m in messages if isinstance(m, EntryMessage)]
        # One retransmitted survivor's interval covers all five deletes.
        assert len(entries) == 1
        assert entries[0].addr == loaded[7]
        assert entries[0].prev_qual == loaded[1]
        pipeline.assert_converged()


class TestInsertsAndReuse:
    def test_insert_qualified(self, pipe):
        new = pipe.table.insert(["fresh", 5])
        result, _ = pipe.refresh()
        assert pipe.snapshot.lookup(new).values == ("fresh", 5)
        pipe.assert_converged()

    def test_insert_unqualified_is_superfluous_only(self, pipe):
        pipe.table.insert(["fresh", 5000])
        result, _ = pipe.refresh()
        pipe.assert_converged()

    def test_reuse_of_qualified_address_by_unqualified_row(self, pipe):
        target = rids(pipe)[4]  # qualified, in snapshot
        pipe.table.delete(target)
        reborn = pipe.table.insert(["ghost", 9999])
        assert reborn == target
        result, _ = pipe.refresh()
        assert pipe.snapshot.lookup(target) is None
        pipe.assert_converged()

    def test_reuse_of_qualified_address_by_qualified_row(self, pipe):
        target = rids(pipe)[4]
        pipe.table.delete(target)
        reborn = pipe.table.insert(["phoenix", 7])
        assert reborn == target
        result, _ = pipe.refresh()
        assert pipe.snapshot.lookup(target).values == ("phoenix", 7)
        pipe.assert_converged()


class TestMultipleRefreshCycles:
    def test_interleaved_changes_converge_every_round(self, db):
        import random

        rng = random.Random(11)
        pipeline = Pipeline(db, where="v < 50")
        pipeline.load([[f"r{i}", rng.randrange(100)] for i in range(30)])
        pipeline.refresh()
        for round_no in range(8):
            live = [rid for rid, _ in pipeline.table.scan()]
            for _ in range(10):
                roll = rng.random()
                if roll < 0.3 and len(live) > 5:
                    victim = live.pop(rng.randrange(len(live)))
                    pipeline.table.delete(victim)
                elif roll < 0.7:
                    target = live[rng.randrange(len(live))]
                    new_rid = pipeline.table.update(
                        target, {"v": rng.randrange(100)}
                    )
                    if new_rid != target:
                        live[live.index(target)] = new_rid
                else:
                    live.append(
                        pipeline.table.insert([f"n{round_no}", rng.randrange(100)])
                    )
            result, _ = pipeline.refresh()
            pipeline.assert_converged()


class TestEagerMode:
    def test_eager_refresh_without_fixup(self, db):
        pipeline = Pipeline(db, mode="eager")
        loaded = pipeline.load([["a", 10], ["b", 500], ["c", 20]])
        result, _ = pipeline.refresh()
        assert result.fixup_writes == 0
        pipeline.assert_converged()
        pipeline.table.update(loaded[0], {"v": 11})
        pipeline.table.delete(loaded[2])
        result, _ = pipeline.refresh()
        assert result.fixup_writes == 0
        pipeline.assert_converged()

    def test_base_refresh_wrapper(self, db):
        table = db.create_table("t", [("v", "int")], annotations="eager")
        table.insert([1])
        restriction = Restriction.true(table.schema)
        projection = Projection(table.schema)
        messages = []
        result = base_refresh(table, 0, restriction, projection, messages.append)
        assert result.entries_sent == 1

    def test_null_timestamp_without_fixup_rejected(self, db):
        table = db.create_table("t", [("v", "int")], annotations="lazy")
        table.insert([1])
        restriction = Restriction.true(table.schema)
        projection = Projection(table.schema)
        with pytest.raises(RefreshMethodError):
            DifferentialRefresher(table).refresh(
                0, restriction, projection, lambda m: None, fixup=False
            )

    def test_annotations_required(self, db):
        table = db.create_table("t", [("v", "int")])
        with pytest.raises(RefreshMethodError):
            DifferentialRefresher(table)


class TestProjectionAndBytes:
    def test_projection_narrows_messages(self, db):
        pipeline = Pipeline(db)
        pipeline.projection = Projection(pipeline.table.schema, ["v"])
        pipeline.snapshot = SnapshotTable(
            Database("remote2"), "snap2", pipeline.projection.schema
        )
        pipeline.load([["averylongname" * 4, 10]])
        result, messages = pipeline.refresh()
        entry = next(m for m in messages if isinstance(m, EntryMessage))
        assert entry.values == (10,)
        assert entry.value_bytes < 20

    def test_bytes_accounted(self, pipe):
        target = rids(pipe)[0]
        pipe.table.update(target, {"v": 1})
        result, messages = pipe.refresh()
        assert result.bytes_sent == sum(m.wire_size() for m in messages)
        assert result.messages_sent == len(messages)
