"""Shared-scan group refresh through the manager and scheduler.

Covers the orchestration layer above :mod:`repro.core.group`:
``refresh_many``/``refresh_all`` grouping differential snapshots per
base table, per-snapshot epochs and fault isolation inside a shared
pass, the scheduler's coalescing window, and the group statistics the
pass reports.  (The byte-identity property itself lives in
``tests/properties/test_group_props.py``.)
"""

import pytest

from repro.core.manager import SnapshotManager
from repro.core.scheduler import RefreshScheduler
from repro.database import Database
from repro.errors import SnapshotError
from repro.expr.predicate import Restriction
from repro.net.faults import FaultyLink
from repro.net.retry import RetryPolicy


def build_fleet(n=3, rows=60, link_for=None, page_size=None, **manager_kwargs):
    """A base table with ``n`` differential snapshots on disjoint bands.

    ``link_for`` maps snapshot index -> FaultyLink to wire in.
    """
    hq = Database("hq", page_size=page_size) if page_size else Database("hq")
    emp = hq.create_table("emp", [("v", "int")])
    rids = [emp.insert([i]) for i in range(rows)]
    manager = SnapshotManager(hq, **manager_kwargs)
    links = dict(link_for or {})
    snaps = []
    band = rows // n
    for i in range(n):
        lo, hi = i * band, (i + 1) * band
        snaps.append(
            manager.create_snapshot(
                f"s{i}",
                "emp",
                where=f"v >= {lo} and v < {hi}",
                method="differential",
                channel=links.get(i),
            )
        )
    return hq, emp, rids, manager, snaps


def truth(emp, snap):
    restriction = snap.restriction
    return {
        rid: row.values
        for rid, row in emp.scan(visible=True)
        if restriction(row)
    }


def churn(emp, rids, seed=0):
    for i in range(0, len(rids), 4):
        emp.update(rids[i], {"v": (i * 7 + seed) % 60})
    emp.delete(rids[1])
    return [emp.insert([v]) for v in (3, 23, 43)]


class TestGroupPass:
    def test_refresh_all_serves_fleet_from_one_pass(self):
        hq, emp, rids, manager, snaps = build_fleet()
        churn(emp, rids)
        results = manager.refresh_all()
        assert sorted(results) == ["s0", "s1", "s2"]
        assert not results.errors
        for snap in snaps:
            assert results[snap.name].group_cursors == 3
            assert snap.as_map() == truth(emp, snap)

    def test_group_pass_advances_each_snap_time(self):
        hq, emp, rids, manager, snaps = build_fleet()
        before = [snap.snap_time for snap in snaps]
        churn(emp, rids)
        results = manager.refresh_all()
        for snap, old in zip(snaps, before):
            assert snap.snap_time > old
            assert snap.snap_time == results[snap.name].new_snap_time

    def test_quiet_group_pass_sends_no_entries(self):
        hq, emp, rids, manager, snaps = build_fleet()
        manager.refresh_all()
        results = manager.refresh_all()
        assert all(r.entries_sent == 0 for r in results.values())

    def test_group_false_refreshes_solo(self):
        hq, emp, rids, manager, snaps = build_fleet()
        churn(emp, rids)
        results = manager.refresh_all(group=False)
        for snap in snaps:
            assert results[snap.name].group_cursors == 1
            assert snap.as_map() == truth(emp, snap)

    def test_singleton_group_demotes_to_solo(self):
        hq, emp, rids, manager, snaps = build_fleet(n=1)
        churn(emp, rids)
        results = manager.refresh_many(["s0"])
        assert results["s0"].group_cursors == 1

    def test_mixed_methods_group_only_differential(self):
        hq, emp, rids, manager, snaps = build_fleet(n=2)
        full = manager.create_snapshot("copy", "emp", method="full")
        churn(emp, rids)
        results = manager.refresh_all()
        assert sorted(results) == ["copy", "s0", "s1"]
        assert results["s0"].group_cursors == 2
        assert results["copy"].group_cursors == 1
        assert full.as_map() == truth(emp, full)

    def test_snapshots_of_different_bases_group_separately(self):
        hq = Database("hq")
        emp = hq.create_table("emp", [("v", "int")])
        dept = hq.create_table("dept", [("v", "int")])
        for i in range(20):
            emp.insert([i])
            dept.insert([i])
        manager = SnapshotManager(hq)
        for i, base in enumerate(["emp", "emp", "dept", "dept"]):
            manager.create_snapshot(
                f"s{i}", base, where="v < 10", method="differential"
            )
        emp.insert([5])
        dept.insert([5])
        results = manager.refresh_all()
        assert all(r.group_cursors == 2 for r in results.values())

    def test_unknown_name_raises(self):
        hq, emp, rids, manager, snaps = build_fleet(n=1)
        with pytest.raises(SnapshotError):
            manager.refresh_many(["s0", "nope"])


class TestGroupStats:
    def test_rows_decoded_once_for_the_whole_fleet(self):
        hq, emp, rids, manager, snaps = build_fleet(
            n=3, use_page_summaries=False
        )
        churn(emp, rids)
        results = manager.refresh_all()
        # Pass-level decode work is shared: each cursor evaluated every
        # decoded entry, but the union decode happened once per entry.
        for result in results.values():
            assert result.entries_evaluated == result.rows_decoded
            assert result.group_cursors == 3

    def test_stale_cursor_does_not_rescan_for_fresh_ones(self):
        hq, emp, rids, manager, snaps = build_fleet(
            n=3, rows=120, page_size=512
        )
        manager.refresh_all()
        # Touch one band only, then refresh the fleet: the group pass
        # fast-forwards every cursor over the untouched pages.
        emp.update(rids[0], {"v": 1})
        results = manager.refresh_all()
        assert all(
            r.pages_fast_forwarded > 0 for r in results.values()
        )
        for snap in snaps:
            assert snap.as_map() == truth(emp, snap)


class TestGroupFaultIsolation:
    def test_one_dead_link_aborts_only_its_epoch(self):
        link = FaultyLink()
        hq, emp, rids, manager, snaps = build_fleet(link_for={1: link})
        churn(emp, rids)
        committed_before = [s.table.committed_epochs for s in snaps]
        link.go_down()
        results = manager.refresh_all()
        assert sorted(results) == ["s0", "s2"]
        assert results.failed == ["s1"]
        # The dead link failed at RefreshBegin: nothing was ever staged
        # at s1's receiver, so nothing committed — while the siblings'
        # epochs committed normally.
        assert snaps[1].table.committed_epochs == committed_before[1]
        for i in (0, 2):
            assert snaps[i].table.committed_epochs == committed_before[i] + 1
            assert snaps[i].as_map() == truth(emp, snaps[i])

    def test_mid_stream_failure_isolated(self):
        link = FaultyLink()
        hq, emp, rids, manager, snaps = build_fleet(link_for={1: link})
        churn(emp, rids)
        link.fail_at(2)  # dies after Begin + one entry of the group pass
        results = manager.refresh_all()
        assert results.failed == ["s1"]
        assert snaps[1].table.aborted_epochs == 1
        for i in (0, 2):
            assert snaps[i].as_map() == truth(emp, snaps[i])

    def test_failed_snapshot_converges_on_next_pass(self):
        link = FaultyLink()
        hq, emp, rids, manager, snaps = build_fleet(link_for={1: link})
        churn(emp, rids)
        stale_time = snaps[1].snap_time
        link.go_down()
        manager.refresh_all()
        assert snaps[1].snap_time == stale_time  # unchanged by the abort
        link.come_up()
        results = manager.refresh_all()
        assert not results.errors
        assert snaps[1].snap_time > stale_time
        assert snaps[1].as_map() == truth(emp, snaps[1])

    def test_group_failure_retries_solo_under_policy(self):
        link = FaultyLink()
        hq, emp, rids, manager, snaps = build_fleet(link_for={1: link})
        churn(emp, rids)
        link.fail_at(2)  # one scripted outage; the solo retry gets through
        results = manager.refresh_all(
            retry=RetryPolicy(max_attempts=3, jitter=0.0)
        )
        assert not results.errors
        assert results["s1"].attempts >= 1
        assert snaps[1].as_map() == truth(emp, snaps[1])

    def test_begin_failure_skips_cursor_entirely(self):
        link = FaultyLink()
        hq, emp, rids, manager, snaps = build_fleet(link_for={1: link})
        churn(emp, rids)
        link.fail_at(0, 10**9)  # permanent outage from the next send on
        results = manager.refresh_all()
        assert results.failed == ["s1"]
        # s1's stream died at RefreshBegin — no epoch was ever staged,
        # so its contents and SnapTime are exactly the pre-pass state.
        assert snaps[1].table.aborted_epochs == 0
        for i in (0, 2):
            assert snaps[i].as_map() == truth(emp, snaps[i])


class TestSchedulerCoalescing:
    def build(self, window):
        hq = Database("hq")
        emp = hq.create_table("emp", [("v", "int")])
        rids = [emp.insert([i]) for i in range(40)]
        manager = SnapshotManager(hq)
        for i, period in enumerate([4, 5, 50]):
            manager.create_snapshot(
                f"s{i}", "emp", where="v < 100", method="differential"
            )
        scheduler = RefreshScheduler(manager, coalesce_window=window)
        for i, period in enumerate([4, 5, 50]):
            scheduler.schedule(f"s{i}", period)
        return hq, emp, rids, manager, scheduler

    def test_near_due_sibling_rides_the_pass(self):
        hq, emp, rids, manager, scheduler = self.build(window=2)
        for i in range(4):
            emp.update(rids[i], {"v": 100 + i})
        # s0 (period 4) is due; s1 (period 5, pending 4) is within the
        # window and rides; s2 (period 50) stays scheduled.
        assert scheduler.group_passes == 1
        assert scheduler.coalesced_refreshes == 1
        assert scheduler.entry("s0").pending == 0
        assert scheduler.entry("s1").pending == 0
        assert scheduler.entry("s2").pending == 4
        assert scheduler.entry("s1").refreshes == 1

    def test_zero_window_never_coalesces(self):
        hq, emp, rids, manager, scheduler = self.build(window=0)
        for i in range(8):
            emp.update(rids[i], {"v": 100 + i})
        assert scheduler.group_passes == 0
        assert scheduler.coalesced_refreshes == 0
        assert scheduler.entry("s0").refreshes == 2
        assert scheduler.entry("s1").refreshes == 1

    def test_negative_window_rejected(self):
        hq = Database("hq")
        manager = SnapshotManager(hq)
        with pytest.raises(SnapshotError):
            RefreshScheduler(manager, coalesce_window=-1)


class TestParseMemoization:
    def setup_method(self):
        Restriction.clear_parse_cache()

    def test_same_text_same_schema_returns_same_object(self):
        db = Database("memo")
        table = db.create_table("t", [("v", "int")])
        first = Restriction.parse("v < 10", table.schema)
        hits = Restriction.parse_cache_hits
        second = Restriction.parse("v < 10", table.schema)
        assert second is first
        assert Restriction.parse_cache_hits == hits + 1

    def test_different_schema_misses(self):
        a = Database("memo").create_table("t", [("v", "int")])
        b = Database("memo2").create_table("t", [("v", "int"), ("w", "int")])
        first = Restriction.parse("v < 10", a.schema)
        second = Restriction.parse("v < 10", b.schema)
        assert second is not first

    def test_snapshot_handles_share_the_compiled_plan(self):
        hq = Database("hq")
        # Pre-enable annotations: the first differential CREATE SNAPSHOT
        # would otherwise extend the schema, and the second snapshot's
        # restriction would compile against a different schema (a cache
        # miss by design — the memo key is (text, schema)).
        emp = hq.create_table("emp", [("v", "int")], annotations="lazy")
        emp.insert([1])
        manager = SnapshotManager(hq)
        a = manager.create_snapshot(
            "a", "emp", where="v < 10", method="differential"
        )
        b = manager.create_snapshot(
            "b", "emp", where="v < 10", method="differential"
        )
        assert a.restriction is b.restriction

    def test_cache_clears_at_limit(self):
        db = Database("memo")
        table = db.create_table("t", [("v", "int")])
        limit = Restriction._parse_cache_limit
        for i in range(limit + 1):
            Restriction.parse(f"v < {i}", table.schema)
        assert len(Restriction._parse_cache) <= limit
