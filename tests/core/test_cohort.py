"""Cohort clustering: signatures, staleness bands, merge rules."""

import pytest

from repro.core.cohort import (
    Cohort,
    CohortKey,
    DueEntry,
    cluster_due,
    staleness_band,
)


def entry(name, base="t", sig="v < ?", cols=("v",), pending=4, seq=None):
    return DueEntry(name, base, sig, tuple(cols), pending, seq if seq is not None else 0)


class TestStalenessBand:
    def test_bands_are_logarithmic(self):
        assert staleness_band(0) == 0
        assert staleness_band(1) == 1
        assert staleness_band(2) == 2
        assert staleness_band(3) == 2
        assert staleness_band(4) == 3
        assert staleness_band(7) == 3
        assert staleness_band(8) == 4

    def test_negative_clamps_to_zero(self):
        assert staleness_band(-5) == 0


class TestClustering:
    def test_same_signature_same_band_one_cohort(self):
        due = [entry(f"s{i}", pending=4, seq=i) for i in range(5)]
        cohorts = cluster_due(due)
        assert len(cohorts) == 1
        assert cohorts[0].members == ("s0", "s1", "s2", "s3", "s4")
        assert cohorts[0].key == CohortKey("t", "v < ?", 3)

    def test_different_bases_never_share(self):
        due = [entry("a", base="t1"), entry("b", base="t2")]
        cohorts = cluster_due(due)
        assert len(cohorts) == 2
        assert {c.key.base_table for c in cohorts} == {"t1", "t2"}

    def test_max_size_caps_cohorts(self):
        due = [entry(f"s{i}", seq=i) for i in range(10)]
        cohorts = cluster_due(due, max_size=4)
        assert [len(c) for c in cohorts] == [4, 4, 2]
        # No member lost, none duplicated.
        names = [m for c in cohorts for m in c.members]
        assert sorted(names) == sorted(e.name for e in due)

    def test_adjacent_bands_share_distant_bands_split(self):
        # bands: pending 2,3 -> band 2; pending 4 -> band 3 (adjacent);
        # pending 100 -> band 7 (distant).
        due = [
            entry("fresh1", pending=2, seq=0),
            entry("fresh2", pending=3, seq=1),
            entry("near", pending=4, seq=2),
            entry("stale", pending=100, seq=3),
        ]
        cohorts = cluster_due(due, min_fill=1)
        by_members = {c.members: c for c in cohorts}
        assert ("fresh1", "fresh2", "near") in by_members
        assert ("stale",) in by_members

    def test_underfilled_same_columns_merge(self):
        # Two singleton signatures over the same column footprint merge.
        due = [
            entry("a", sig="v < ?", cols=("v",), pending=4, seq=0),
            entry("b", sig="v > ?", cols=("v",), pending=4, seq=1),
        ]
        cohorts = cluster_due(due, max_size=8)
        assert len(cohorts) == 1
        assert sorted(cohorts[0].members) == ["a", "b"]

    def test_underfilled_different_columns_stay_apart(self):
        due = [
            entry("a", sig="v < ?", cols=("v",), seq=0),
            entry("b", sig="name LIKE ?", cols=("name",), seq=1),
        ]
        cohorts = cluster_due(due, max_size=8)
        assert len(cohorts) == 2

    def test_full_cohorts_do_not_merge(self):
        due = [
            entry(f"a{i}", sig="v < ?", seq=i) for i in range(4)
        ] + [
            entry(f"b{i}", sig="v > ?", seq=10 + i) for i in range(4)
        ]
        cohorts = cluster_due(due, max_size=8, min_fill=2)
        # Both signature groups meet min_fill, so neither merges.
        assert len(cohorts) == 2

    def test_deterministic(self):
        due = [
            entry(f"s{i}", sig="v < ?" if i % 2 else "v > ?", pending=1 + i % 5, seq=i)
            for i in range(20)
        ]
        assert cluster_due(due) == cluster_due(list(due))

    def test_rejects_bad_max_size(self):
        with pytest.raises(ValueError):
            cluster_due([entry("x")], max_size=0)

    def test_cohort_len(self):
        cohort = Cohort(CohortKey("t", "v < ?", 1), ("a", "b"), (1,))
        assert len(cohort) == 2
