"""Stage 2: empty-region maintenance and combined-region refresh."""

import random

import pytest

from repro.core.empty_regions import (
    DenseRegionMessage,
    EmptyRegionTable,
    RegionSnapshot,
)
from repro.core.simple import SimpleElementMessage
from repro.errors import SnapshotError
from repro.relation.schema import Schema

SCHEMA = Schema.of(("v", "int"),)


@pytest.fixture
def table():
    return EmptyRegionTable(20, SCHEMA)


def refresh_into(table, snapshot, snap_time, restriction):
    messages = []

    def deliver(message):
        messages.append(message)
        snapshot.apply(message)

    new_time = table.refresh(snap_time, restriction, deliver)
    return messages, new_time


class TestRegionMaintenance:
    def test_initially_one_region(self, table):
        regions = table.regions()
        assert len(regions) == 1
        assert (regions[0].lo, regions[0].hi) == (1, 20)

    def test_insert_splits(self, table):
        table.insert((1,), addr=5)
        spans = [(r.lo, r.hi) for r in table.regions()]
        assert spans == [(1, 4), (6, 20)]
        table.check_invariants()

    def test_insert_at_region_edge(self, table):
        table.insert((1,), addr=1)
        assert [(r.lo, r.hi) for r in table.regions()] == [(2, 20)]
        table.check_invariants()

    def test_delete_coalesces_both_sides(self, table):
        for addr in (4, 5, 6):
            table.insert((addr,), addr=addr)
        table.delete(4)
        table.delete(6)
        table.delete(5)  # bridges [?,4] and [6,?] back together
        assert [(r.lo, r.hi) for r in table.regions()] == [(1, 20)]
        table.check_invariants()

    def test_randomized_invariants(self, table):
        rng = random.Random(9)
        live = set()
        for _ in range(500):
            if live and rng.random() < 0.45:
                addr = rng.choice(sorted(live))
                table.delete(addr)
                live.discard(addr)
            elif len(live) < 20:
                addr = table.insert((0,))
                live.add(addr)
            table.check_invariants()
        assert set(table.occupied()) == live

    def test_errors(self, table):
        with pytest.raises(SnapshotError):
            table.delete(3)
        with pytest.raises(SnapshotError):
            table.update(3, (1,))
        table.insert((1,), addr=3)
        with pytest.raises(SnapshotError):
            table.insert((2,), addr=3)


class TestRefresh:
    def test_initial_refresh_sends_qualified(self, table):
        for addr in (2, 5, 9):
            table.insert((addr,), addr=addr)
        snapshot = RegionSnapshot()
        messages, _ = refresh_into(table, snapshot, 0, lambda v: True)
        assert snapshot.as_map() == {2: (2,), 5: (5,), 9: (9,)}

    def test_delete_covered_by_region(self, table):
        for addr in (2, 5, 9):
            table.insert((addr,), addr=addr)
        snapshot = RegionSnapshot()
        _, time1 = refresh_into(table, snapshot, 0, lambda v: True)
        table.delete(5)
        messages, _ = refresh_into(table, snapshot, time1, lambda v: True)
        regions = [m for m in messages if isinstance(m, DenseRegionMessage)]
        assert len(regions) == 1
        assert regions[0].lo <= 5 <= regions[0].hi
        assert snapshot.as_map() == {2: (2,), 9: (9,)}

    def test_regions_merged_across_unqualified_entries(self, table):
        # qualified(2) [empty 3-4] unqualified(5) [empty 6-7] qualified(8)
        table.insert((1,), addr=2)
        table.insert((100,), addr=5)
        table.insert((1,), addr=8)
        restriction = lambda v: v[0] < 10  # noqa: E731
        snapshot = RegionSnapshot()
        _, time1 = refresh_into(table, snapshot, 0, restriction)
        # Updating the unqualified entry dirties the merged region.
        table.update(5, (200,))
        messages, _ = refresh_into(table, snapshot, time1, restriction)
        regions = [m for m in messages if isinstance(m, DenseRegionMessage)]
        assert len(regions) == 1
        assert regions[0].lo == 3 and regions[0].hi == 7

    def test_clean_regions_not_transmitted(self, table):
        table.insert((1,), addr=2)
        table.insert((1,), addr=8)
        snapshot = RegionSnapshot()
        _, time1 = refresh_into(table, snapshot, 0, lambda v: True)
        messages, _ = refresh_into(table, snapshot, time1, lambda v: True)
        assert [m for m in messages if isinstance(m, DenseRegionMessage)] == []
        assert [m for m in messages if isinstance(m, SimpleElementMessage)] == []

    def test_unqualified_update_deletes_from_snapshot(self, table):
        table.insert((5,), addr=4)
        restriction = lambda v: v[0] < 10  # noqa: E731
        snapshot = RegionSnapshot()
        _, time1 = refresh_into(table, snapshot, 0, restriction)
        assert snapshot.as_map() == {4: (5,)}
        table.update(4, (50,))  # no longer qualifies
        refresh_into(table, snapshot, time1, restriction)
        assert snapshot.as_map() == {}

    def test_matches_ground_truth_under_random_workload(self):
        rng = random.Random(17)
        table = EmptyRegionTable(60, SCHEMA)
        restriction = lambda v: v[0] < 50  # noqa: E731
        snapshot = RegionSnapshot()
        snap_time = 0
        for round_no in range(10):
            for _ in range(25):
                roll = rng.random()
                occupied = sorted(table.occupied())
                if occupied and roll < 0.3:
                    table.delete(rng.choice(occupied))
                elif occupied and roll < 0.6:
                    table.update(rng.choice(occupied), (rng.randrange(100),))
                elif len(occupied) < 60:
                    table.insert((rng.randrange(100),))
            _, snap_time = refresh_into(table, snapshot, snap_time, restriction)
            truth = {
                addr: values
                for addr, values in table.occupied().items()
                if restriction(values)
            }
            assert snapshot.as_map() == truth, f"diverged in round {round_no}"
