"""Refresh messages: wire sizes and entry classification."""

from repro.core.messages import (
    ClearMessage,
    DeleteMessage,
    DeleteRangeMessage,
    EndOfScanMessage,
    EntryMessage,
    FullRowMessage,
    SnapTimeMessage,
    UpsertMessage,
)
from repro.storage.rid import Rid

A = Rid(0, 1)
B = Rid(0, 5)


class TestWireSizes:
    def test_entry_message(self):
        message = EntryMessage(B, A, ("Laura", 6), value_bytes=20)
        assert message.wire_size() == 1 + 8 + 8 + 20

    def test_end_of_scan(self):
        assert EndOfScanMessage(A).wire_size() == 1 + 16

    def test_snap_time(self):
        assert SnapTimeMessage(430).wire_size() == 1 + 8

    def test_delete_range(self):
        assert DeleteRangeMessage(A, B).wire_size() == 1 + 16
        assert DeleteRangeMessage(A, None).wire_size() == 1 + 16

    def test_upsert(self):
        assert UpsertMessage(A, ("x",), value_bytes=5).wire_size() == 1 + 8 + 5

    def test_delete(self):
        assert DeleteMessage(A).wire_size() == 1 + 8

    def test_clear(self):
        assert ClearMessage().wire_size() == 1

    def test_full_row(self):
        assert FullRowMessage(A, ("x",), value_bytes=5).wire_size() == 1 + 8 + 5

    def test_delete_only_cheaper_than_entry(self):
        # The optimize_deletes rationale.
        entry = EntryMessage(B, A, ("Laura", 6), value_bytes=20)
        assert DeleteRangeMessage(A, B).wire_size() < entry.wire_size()


class TestEntryClassification:
    def test_entry_bearing_messages(self):
        for message in (
            EntryMessage(B, A, (), 0),
            DeleteRangeMessage(A, B),
            UpsertMessage(A, (), 0),
            DeleteMessage(A),
            FullRowMessage(A, (), 0),
        ):
            assert message.counts_as_entry

    def test_control_messages(self):
        for message in (
            EndOfScanMessage(A),
            SnapTimeMessage(1),
            ClearMessage(),
        ):
            assert not message.counts_as_entry

    def test_reprs_are_informative(self):
        assert "Laura" in repr(EntryMessage(B, A, ("Laura", 6), 20))
        assert "430" in repr(SnapTimeMessage(430))
