"""SnapshotManager: DDL, refresh orchestration, locking, multi-snapshot."""

import pytest

from repro.catalog.compiler import RefreshMethod
from repro.core.manager import SnapshotManager
from repro.database import Database
from repro.errors import CatalogError, LockTimeoutError, SnapshotError
from repro.txn.locks import LockMode


@pytest.fixture
def env(db):
    table = db.create_table("emp", [("name", "string"), ("salary", "int")])
    table.bulk_load([[f"e{i}", i % 20] for i in range(100)])
    return db, table, SnapshotManager(db)


class TestCreate:
    def test_differential_enables_annotations(self, env):
        db, table, manager = env
        assert table.annotation_mode == "none"
        manager.create_snapshot(
            "low", "emp", where="salary < 10", method="differential"
        )
        assert table.annotation_mode == "lazy"

    def test_second_snapshot_adds_no_fields(self, env):
        db, table, manager = env
        manager.create_snapshot("a", "emp", method="differential")
        schema_after_first = table.schema
        manager.create_snapshot("b", "emp", method="differential")
        assert table.schema is schema_after_first

    def test_initial_population(self, env):
        db, table, manager = env
        snap = manager.create_snapshot(
            "low", "emp", where="salary < 10", method="differential"
        )
        assert len(snap.table) == 50
        assert snap.as_map() == {
            rid: row.values
            for rid, row in table.scan(visible=True)
            if row.values[1] < 10
        }

    def test_projection(self, env):
        db, table, manager = env
        snap = manager.create_snapshot(
            "names", "emp", columns=["name"], method="full"
        )
        assert all(len(row) == 1 for row in snap.rows())

    def test_remote_target_db(self, env):
        db, table, manager = env
        branch = Database("branch")
        snap = manager.create_snapshot(
            "low", "emp", where="salary < 10", method="full", target_db=branch
        )
        assert snap.table.db is branch

    def test_full_method_leaves_table_plain(self, env):
        db, table, manager = env
        manager.create_snapshot("copy", "emp", method="full")
        assert table.annotation_mode == "none"

    def test_duplicate_name_rejected(self, env):
        db, table, manager = env
        manager.create_snapshot("s", "emp", method="full")
        with pytest.raises(CatalogError):
            manager.create_snapshot("s", "emp", method="full")

    def test_no_initial_refresh(self, env):
        db, table, manager = env
        snap = manager.create_snapshot(
            "lazy", "emp", method="differential", initial_refresh=False
        )
        assert len(snap.table) == 0

    def test_auto_resolves_to_concrete_method(self, env):
        db, table, manager = env
        snap = manager.create_snapshot("auto", "emp", method="auto")
        assert snap.method in (RefreshMethod.DIFFERENTIAL, RefreshMethod.FULL)


class TestRefresh:
    def test_refresh_advances_snap_time(self, env):
        db, table, manager = env
        snap = manager.create_snapshot("s", "emp", method="differential")
        first_time = snap.snap_time
        table.insert(["new", 5])
        result = snap.refresh()
        assert snap.snap_time == result.new_snap_time > first_time
        assert snap.info.refresh_count == 2  # initial + this one

    def test_unknown_snapshot(self, env):
        _, _, manager = env
        with pytest.raises(SnapshotError):
            manager.refresh("ghost")

    def test_refresh_blocked_by_active_transaction(self, env):
        db, table, manager = env
        snap = manager.create_snapshot("s", "emp", method="differential")
        txn = db.txns.begin()
        table.insert(["held", 1], txn=txn)  # holds IX on the table
        with pytest.raises(LockTimeoutError):
            snap.refresh()
        txn.commit()
        snap.refresh()  # succeeds once the lock is gone

    def test_lock_released_after_refresh(self, env):
        db, table, manager = env
        snap = manager.create_snapshot("s", "emp", method="differential")
        snap.refresh()
        db.locks.acquire("probe", ("table", "emp"), LockMode.X)

    def test_refresh_all(self, env):
        db, table, manager = env
        manager.create_snapshot("a", "emp", where="salary < 5", method="differential")
        manager.create_snapshot("b", "emp", method="full")
        table.insert(["x", 1])
        results = manager.refresh_all("emp")
        assert set(results) == {"a", "b"}

    def test_blocking_channel(self, env):
        db, table, manager = env
        snap = manager.create_snapshot(
            "blocked", "emp", method="differential", block_size=8
        )
        # Initial refresh flowed through frames; contents still correct.
        assert len(snap.table) == 100
        assert snap.channel.stats.messages < snap.channel.logical.messages


class TestMultipleSnapshots:
    def test_independent_refresh_schedules(self, env):
        db, table, manager = env
        fast = manager.create_snapshot(
            "fast", "emp", where="salary < 10", method="differential"
        )
        slow = manager.create_snapshot(
            "slow", "emp", where="salary >= 10", method="differential"
        )
        rids = [rid for rid, _ in table.scan()]
        table.update(rids[0], {"salary": 3})
        fast.refresh()  # slow is now stale, fast is current
        truth_fast = {
            rid: row.values
            for rid, row in table.scan(visible=True)
            if row.values[1] < 10
        }
        assert fast.as_map() == truth_fast
        # slow catches up later and is also exact.
        slow.refresh()
        truth_slow = {
            rid: row.values
            for rid, row in table.scan(visible=True)
            if row.values[1] >= 10
        }
        assert slow.as_map() == truth_slow

    def test_amortized_fixup(self, env):
        db, table, manager = env
        first = manager.create_snapshot("a", "emp", method="differential")
        second = manager.create_snapshot("b", "emp", method="differential")
        rids = [rid for rid, _ in table.scan()]
        for rid in rids[:10]:
            table.update(rid, {"salary": 1})
        result_first = first.refresh()  # performs the fix-up work
        result_second = second.refresh()  # finds clean annotations
        assert result_first.fixup_writes == 10
        assert result_second.fixup_writes == 0
        # ... but still learns about every change.
        assert result_second.entries_sent >= 10


class TestLogMethod:
    def test_log_snapshot_populates_then_tracks(self, env):
        db, table, manager = env
        snap = manager.create_snapshot(
            "logged", "emp", where="salary < 10", method="log"
        )
        assert len(snap.table) == 50  # populated despite the bulk load
        rid = table.insert(["tracked", 1])
        result = snap.refresh()
        assert result.entries_sent == 1
        assert snap.table.lookup(rid).values == ("tracked", 1)


class TestDrop:
    def test_drop_removes_catalog_entry(self, env):
        db, table, manager = env
        manager.create_snapshot("s", "emp", method="full")
        manager.drop_snapshot("s")
        assert not db.catalog.has_snapshot("s")
        with pytest.raises(SnapshotError):
            manager.refresh("s")

    def test_drop_unknown(self, env):
        _, _, manager = env
        with pytest.raises(SnapshotError):
            manager.drop_snapshot("ghost")
