"""Sharded parallel refresh: plan, executor, and orchestration units.

Covers the machinery around :func:`~repro.core.shard.run_sharded_refresh_scan`:
summary-aware shard planning, the executor seam (serial and pooled),
the manager/group/scheduler wiring, and the per-shard statistics rolled
into :class:`~repro.core.differential.RefreshResult`.  (The
byte-identity property itself lives in
``tests/properties/test_shard_props.py``.)
"""

import pytest

from repro.core.differential import DifferentialRefresher
from repro.core.group import GroupRefresher
from repro.core.manager import SnapshotManager
from repro.core.scheduler import RefreshScheduler
from repro.core.shard import (
    DIRTY_PAGE_WEIGHT,
    PoolShardExecutor,
    SerialShardExecutor,
    ShardPlan,
    default_shard_executor,
    run_sharded_refresh_scan,
)
from repro.database import Database
from repro.errors import RefreshMethodError, SnapshotError


def build_table(rows=400, annotations="lazy"):
    db = Database("shard-unit")
    table = db.create_table(
        "t", [("id", "int"), ("v", "int")], annotations=annotations
    )
    rids = [table.insert([i, i % 50]) for i in range(rows)]
    return db, table, rids


def churn(table, rids, fraction=3):
    for i in range(0, len(rids), fraction):
        table.update(rids[i], {"v": (i * 7) % 50})


class TestShardPlan:
    def test_uniform_weights_balance_page_counts(self):
        db, table, rids = build_table(rows=600)
        plan = ShardPlan.build(table, 4, False, 0)
        assert len(plan.ranges) == 4
        assert plan.page_count == table.heap.page_count
        assert plan.total_weight == plan.page_count * DIRTY_PAGE_WEIGHT
        # Contiguous, complete, non-overlapping cover of the page space.
        assert plan.ranges[0].start == 0
        assert plan.ranges[-1].stop == plan.page_count
        for left, right in zip(plan.ranges, plan.ranges[1:]):
            assert left.stop == right.start
        sizes = [r.stop - r.start for r in plan.ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_pages_clamps(self):
        db, table, rids = build_table(rows=20)
        plan = ShardPlan.build(table, 16, False, 0)
        assert 1 <= len(plan.ranges) <= table.heap.page_count
        assert plan.ranges[-1].stop == plan.page_count
        for shard in plan.ranges:
            assert shard.stop > shard.start

    def test_summary_weighting_spreads_dirty_burst(self):
        """A clustered write burst lands spread across shards."""
        db, table, rids = build_table(rows=600)
        refresher = DifferentialRefresher(table, use_page_summaries=True)
        # One full refresh so every page has a current summary.
        from repro.expr.predicate import Projection, Restriction

        restriction = Restriction.parse("v >= 0", table.schema)
        projection = Projection(table.schema)
        result = refresher.refresh(
            0, restriction, projection, lambda m: None, cache={}
        )
        snap_time = result.new_snap_time
        # Dirty a clustered prefix of the table only.
        for rid in rids[: len(rids) // 4]:
            table.update(rid, {"v": 7})
        plan = ShardPlan.build(table, 4, True, snap_time)
        clean = ShardPlan.build(table, 4, False, snap_time)
        # Weighted plan: the dirty prefix costs DIRTY_PAGE_WEIGHT per
        # page, the clean tail 1 — the first shard must span fewer
        # pages than a page-uniform split would give it.
        uniform_first = clean.ranges[0].stop - clean.ranges[0].start
        weighted_first = plan.ranges[0].stop - plan.ranges[0].start
        assert weighted_first < uniform_first
        assert plan.total_weight < clean.total_weight

    def test_zero_shards_rejected(self):
        db, table, rids = build_table(rows=10)
        with pytest.raises(RefreshMethodError):
            ShardPlan.build(table, 0, False, 0)


class TestExecutors:
    def test_serial_runs_in_order(self):
        order = []
        executor = SerialShardExecutor()
        outcomes = executor.run(
            [lambda i=i: order.append(i) or i for i in range(5)]
        )
        assert outcomes == [0, 1, 2, 3, 4]
        assert order == [0, 1, 2, 3, 4]
        executor.close()

    def test_pool_returns_in_submission_order(self):
        executor = PoolShardExecutor(max_workers=4)
        try:
            outcomes = executor.run([lambda i=i: i * i for i in range(8)])
            assert outcomes == [i * i for i in range(8)]
        finally:
            executor.close()

    def test_pool_reuses_and_grows(self):
        executor = PoolShardExecutor()
        try:
            assert executor.run([lambda: 1, lambda: 2]) == [1, 2]
            first = executor._pool
            assert executor.run([lambda: 3]) == [3]
            assert executor._pool is first
            assert executor.run([lambda i=i: i for i in range(6)]) == list(
                range(6)
            )
        finally:
            executor.close()

    def test_pool_propagates_worker_failure(self):
        executor = PoolShardExecutor(max_workers=2)
        try:

            def boom():
                raise ValueError("worker died")

            with pytest.raises(ValueError, match="worker died"):
                executor.run([lambda: 1, boom, lambda: 3])
        finally:
            executor.close()

    def test_default_executor_is_shared(self):
        assert default_shard_executor() is default_shard_executor()


class TestRefresherWiring:
    def test_shards_validation(self):
        db, table, rids = build_table(rows=10)
        with pytest.raises(RefreshMethodError):
            DifferentialRefresher(table, shards=0)
        with pytest.raises(RefreshMethodError):
            GroupRefresher(table, shards=0)
        with pytest.raises(RefreshMethodError):
            run_sharded_refresh_scan(table, [], shards=0)

    def test_result_reports_shard_stats(self):
        db, table, rids = build_table(rows=600)
        churn(table, rids)
        refresher = DifferentialRefresher(
            table, shards=4, shard_executor=SerialShardExecutor()
        )
        from repro.expr.predicate import Projection, Restriction

        result = refresher.refresh(
            0,
            Restriction.parse("v < 25", table.schema),
            Projection(table.schema),
            lambda m: None,
        )
        assert result.shards >= 2
        assert len(result.shard_stats) == result.shards
        assert sum(s.entries for s in result.shard_stats) == result.scanned
        assert sum(s.pages_scanned for s in result.shard_stats) == (
            result.pages_scanned
        )
        assert result.shard_skew >= 1.0
        assert result.merge_wall >= 0.0
        for stat in result.shard_stats:
            assert stat.stop > stat.start
            assert stat.weight > 0

    def test_single_page_table_falls_back_to_monolithic(self):
        db, table, rids = build_table(rows=5)
        refresher = DifferentialRefresher(table, shards=8)
        from repro.expr.predicate import Projection, Restriction

        result = refresher.refresh(
            0,
            Restriction.parse("v >= 0", table.schema),
            Projection(table.schema),
            lambda m: None,
        )
        assert result.shards == 1
        assert result.shard_stats == ()


class TestManagerWiring:
    def build_manager(self, rows=500, **snap_kwargs):
        db, table, rids = build_table(rows=rows)
        manager = SnapshotManager(db)
        handle = manager.create_snapshot(
            "s", "t", where="v < 25", **snap_kwargs
        )
        return db, table, rids, manager, handle

    def test_create_snapshot_shards_flow_through(self):
        db, table, rids, manager, handle = self.build_manager(shards=4)
        churn(table, rids)
        result = manager.refresh("s")
        assert result.shards >= 2
        assert handle.refresher.shards == 4
        truth = {
            rid: row.values
            for rid, row in table.scan(visible=True)
            if row.values[1] < 25
        }
        assert dict(handle.table.as_map()) == truth

    def test_shards_require_differential_method(self):
        db, table, rids = build_table(rows=50)
        manager = SnapshotManager(db)
        with pytest.raises(SnapshotError, match="shards"):
            manager.create_snapshot(
                "s", "t", where="v < 25", method="full", shards=4
            )

    def test_group_pass_uses_max_member_shards(self):
        db, table, rids = build_table(rows=500)
        manager = SnapshotManager(db)
        manager.create_snapshot("a", "t", where="v < 25", shards=4)
        manager.create_snapshot("b", "t", where="v >= 25")
        churn(table, rids)
        results = manager.refresh_many(["a", "b"])
        assert not results.errors
        # One shared pass served both; the sharded member's setting
        # promotes the whole pass (byte streams are unchanged either
        # way — that is the property suite's charter).
        assert results["a"].shards >= 2
        assert results["a"].shards == results["b"].shards


class TestSchedulerTelemetry:
    def test_sharded_passes_and_skew_recorded(self):
        db, table, rids = build_table(rows=400)
        manager = SnapshotManager(db)
        manager.create_snapshot("s", "t", where="v < 25", shards=4)
        scheduler = RefreshScheduler(manager)
        scheduler.schedule("s", every_ops=40)
        churn(table, rids, fraction=2)
        assert scheduler.sharded_passes > 0
        assert scheduler.average_shard_skew >= 1.0
        assert scheduler.shard_skew_max >= scheduler.average_shard_skew
        scheduler.close()

    def test_monolithic_refreshes_record_nothing(self):
        db, table, rids = build_table(rows=400)
        manager = SnapshotManager(db)
        manager.create_snapshot("s", "t", where="v < 25")
        scheduler = RefreshScheduler(manager)
        scheduler.schedule("s", every_ops=40)
        churn(table, rids, fraction=2)
        assert scheduler.sharded_passes == 0
        assert scheduler.average_shard_skew == 0.0
        scheduler.close()
