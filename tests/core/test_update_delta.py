"""Per-column update deltas: the value cache and the receiver merge."""

import pytest

from repro.core.differential import DifferentialRefresher, ValueCache
from repro.core.manager import SnapshotManager
from repro.core.messages import EntryMessage, UpdateDeltaMessage
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.errors import RetryExhaustedError, SnapshotError
from repro.net.faults import FaultyLink
from repro.net.retry import RetryPolicy
from repro.relation.schema import Column, Schema
from repro.relation.types import IntType, StringType
from repro.storage.rid import Rid


def build(n=60):
    db = Database()
    schema = Schema(
        [
            Column("id", IntType(), nullable=False),
            Column("name", StringType(), nullable=True),
            Column("v", IntType()),
        ]
    )
    table = db.create_table("items", schema, annotations="lazy")
    rids = [table.insert([i, f"name-{i:04d}", i % 7]) for i in range(n)]
    return db, table, rids


def truth(table, predicate):
    return {
        rid: row.values
        for rid, row in table.scan(visible=True)
        if predicate(row.values)
    }


class TestDeltaRefresh:
    def test_second_refresh_sends_deltas(self):
        db, table, rids = build()
        manager = SnapshotManager(db)
        snap = manager.create_snapshot(
            "s", "items", where="v < 5", delta_updates=True
        )
        assert snap.table.applied_merges == 0
        before = len(snap.value_cache)
        assert before == len(snap.table)  # initial refresh filled the mirror

        for i in range(10, 30):
            table.update(rids[i], {"v": 1})
        snap.refresh()
        assert snap.table.applied_merges > 0
        assert snap.table.as_map() == truth(table, lambda v: v[2] < 5)

    def test_delta_bytes_beat_full_entries(self):
        results = {}
        for delta in (False, True):
            db, table, rids = build(120)
            manager = SnapshotManager(db)
            snap = manager.create_snapshot(
                "s", "items", where="v >= 0", delta_updates=delta
            )
            for i in range(30, 90):
                table.update(rids[i], {"v": (i * 3) % 7})
            result = snap.refresh()
            results[delta] = (result.bytes_sent, result.entries_sent)
        assert results[True][1] == results[False][1]  # same logical stream
        assert results[True][0] < results[False][0]

    def test_new_rows_fall_back_to_full_entries(self):
        db, table, rids = build()
        manager = SnapshotManager(db)
        snap = manager.create_snapshot(
            "s", "items", where="v < 5", delta_updates=True
        )
        merges_before = snap.table.applied_merges
        table.insert([999, "new-row", 0])
        snap.refresh()
        # A row the receiver has never seen cannot be delta-merged.
        assert snap.table.applied_merges == merges_before
        assert snap.table.as_map() == truth(table, lambda v: v[2] < 5)

    def test_requires_differential_method(self):
        db, table, rids = build()
        manager = SnapshotManager(db)
        with pytest.raises(SnapshotError):
            manager.create_snapshot(
                "s", "items", method="full", delta_updates=True
            )

    def test_group_refresh_with_deltas(self):
        db, table, rids = build(100)
        manager = SnapshotManager(db)
        one = manager.create_snapshot(
            "one", "items", where="v < 5", delta_updates=True
        )
        two = manager.create_snapshot(
            "two", "items", where="v >= 2", delta_updates=True
        )
        for i in range(20, 70):
            table.update(rids[i], {"v": (i * 5) % 7})
        outcome = manager.refresh_all("items")
        assert not outcome.errors
        assert one.table.as_map() == truth(table, lambda v: v[2] < 5)
        assert two.table.as_map() == truth(table, lambda v: v[2] >= 2)
        assert one.table.applied_merges + two.table.applied_merges > 0


class TestValueCacheLifecycle:
    def test_failed_epoch_does_not_commit_stage(self):
        db, table, rids = build()
        manager = SnapshotManager(db)
        link = FaultyLink()
        snap = manager.create_snapshot(
            "s", "items", where="v < 5", channel=link, delta_updates=True
        )
        committed = dict(snap.value_cache.pages)
        before_map = snap.table.as_map()
        before_time = snap.table.snap_time

        for i in range(5, 25):
            table.update(rids[i], {"v": 2})
        link.fail_at(10)  # die mid-stream on the next refresh
        with pytest.raises(RetryExhaustedError):
            manager.refresh("s", retry=RetryPolicy(max_attempts=1))
        # Neither side moved: snapshot intact, mirror stage dropped.
        assert snap.table.as_map() == before_map
        assert snap.table.snap_time == before_time
        assert snap.value_cache.pages == committed
        assert snap.value_cache.staged is None

        link.clear_faults()
        snap.refresh()
        assert snap.table.as_map() == truth(table, lambda v: v[2] < 5)

    def test_retry_after_failure_still_correct(self):
        db, table, rids = build()
        manager = SnapshotManager(db)
        link = FaultyLink()
        snap = manager.create_snapshot(
            "s", "items", where="v < 5", channel=link, delta_updates=True
        )
        for i in range(5, 25):
            table.update(rids[i], {"v": 2})
        link.fail_at(4)
        result = manager.refresh("s", retry=RetryPolicy(max_attempts=3))
        assert result.attempts == 2
        assert snap.table.as_map() == truth(table, lambda v: v[2] < 5)

    def test_standalone_refresher_owns_its_cache(self):
        db, table, rids = build()
        refresher = DifferentialRefresher(table, delta_updates=True)
        from repro.expr.predicate import Projection, Restriction

        restriction = Restriction.parse("v < 5", table.schema)
        projection = Projection(table.schema)
        receiver = SnapshotTable(Database("remote"), "s", projection.schema)

        first = []
        refresher.refresh(
            0, restriction, projection, lambda m: (first.append(m), receiver.apply(m))
        )
        assert all(not isinstance(m, UpdateDeltaMessage) for m in first)

        for i in range(10, 20):
            table.update(rids[i], {"v": 1})
        second = []
        refresher.refresh(
            receiver.snap_time,
            restriction,
            projection,
            lambda m: (second.append(m), receiver.apply(m)),
        )
        assert any(isinstance(m, UpdateDeltaMessage) for m in second)
        assert receiver.as_map() == truth(table, lambda v: v[2] < 5)

    def test_restriction_change_clears_internal_cache(self):
        db, table, rids = build()
        refresher = DifferentialRefresher(table, delta_updates=True)
        from repro.expr.predicate import Projection, Restriction

        projection = Projection(table.schema)
        refresher.refresh(
            0, Restriction.parse("v < 5", table.schema), projection, lambda m: None
        )
        assert len(refresher._value_cache) > 0
        refresher.refresh(
            0, Restriction.parse("v >= 5", table.schema), projection, lambda m: None
        )
        # The mirror never mixes two different snapshots' contents.
        for page in refresher._value_cache.pages.values():
            pass  # contents replaced wholesale by the new restriction
        assert refresher._cache_restriction == "v >= 5"


class TestReceiverMerge:
    def make_receiver(self):
        schema = Schema(
            [
                Column("a", IntType()),
                Column("b", StringType(), nullable=True),
            ]
        )
        return SnapshotTable(Database(), "s", schema)

    def test_merge_overlays_masked_columns_only(self):
        snap = self.make_receiver()
        addr = Rid(0, 0)
        snap.apply(EntryMessage(addr, Rid.BEGIN, (1, "keep"), 10))
        snap.apply(UpdateDeltaMessage(addr, Rid.BEGIN, 0b01, (2,), 2))
        assert snap.as_map() == {addr: (2, "keep")}
        assert snap.applied_merges == 1

    def test_merge_for_unknown_address_is_protocol_violation(self):
        snap = self.make_receiver()
        with pytest.raises(SnapshotError):
            snap.apply(UpdateDeltaMessage(Rid(3, 3), Rid.BEGIN, 0b01, (1,), 2))

    def test_merge_clears_preceding_interval(self):
        snap = self.make_receiver()
        for slot in range(3):
            snap.apply(
                EntryMessage(
                    Rid(0, slot),
                    Rid(0, slot - 1) if slot else Rid.BEGIN,
                    (slot, "x"),
                    10,
                )
            )
        # Delta for slot 2 claiming prev_qual slot 0: slot 1 was deleted.
        snap.apply(UpdateDeltaMessage(Rid(0, 2), Rid(0, 0), 0b01, (9,), 2))
        assert snap.as_map() == {Rid(0, 0): (0, "x"), Rid(0, 2): (9, "x")}


class TestValueCacheUnit:
    def test_commit_adopts_stage(self):
        cache = ValueCache()
        cache.stage({0: {Rid(0, 0): (1,)}})
        assert len(cache) == 0
        assert cache.commit()
        assert cache.lookup(Rid(0, 0)) == (1,)
        assert not cache.commit()  # nothing staged now

    def test_abort_drops_stage(self):
        cache = ValueCache()
        cache.stage({0: {Rid(0, 0): (1,)}})
        cache.abort()
        assert not cache.commit()
        assert cache.lookup(Rid(0, 0)) is None
