"""Refresh epochs: atomic commit, rollback, idempotence at the receiver."""

import pytest

from repro.core import messages as msg
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.errors import EpochError
from repro.relation.schema import Schema
from repro.storage.rid import Rid


@pytest.fixture
def snapshot():
    return SnapshotTable(Database("remote"), "s", Schema.of(("v", "int")))


def upsert(i, value):
    return msg.UpsertMessage(Rid(0, i), (value,), 8)


class TestEpochCommit:
    def test_staged_messages_invisible_until_commit(self, snapshot):
        snapshot.apply(msg.RefreshBeginMessage(7))
        snapshot.apply(upsert(0, 10))
        snapshot.apply(upsert(1, 20))
        assert len(snapshot) == 0  # nothing applied yet
        assert snapshot.staged_messages == 2
        snapshot.apply(msg.RefreshCommitMessage(7, 2))
        assert len(snapshot) == 2
        assert snapshot.committed_epochs == 1
        assert snapshot.last_committed_epoch == 7
        assert not snapshot.epoch_open

    def test_snap_time_is_epoch_guarded(self, snapshot):
        snapshot.apply(msg.RefreshBeginMessage(1))
        snapshot.apply(msg.SnapTimeMessage(9))
        assert snapshot.snap_time == 0  # staged, not adopted
        snapshot.apply(msg.RefreshCommitMessage(1, 1))
        assert snapshot.snap_time == 9

    def test_out_of_order_snap_time_detected_at_commit(self, snapshot):
        snapshot.snap_time = 50
        snapshot.apply(msg.RefreshBeginMessage(1))
        snapshot.apply(msg.SnapTimeMessage(9))
        from repro.errors import SnapshotError

        with pytest.raises(SnapshotError):
            snapshot.apply(msg.RefreshCommitMessage(1, 1))


class TestEpochAbort:
    def test_new_begin_discards_torn_stream(self, snapshot):
        snapshot.apply(msg.RefreshBeginMessage(1))
        snapshot.apply(upsert(0, 10))
        # The link died; the retry opens its own epoch.
        snapshot.apply(msg.RefreshBeginMessage(2))
        snapshot.apply(upsert(0, 11))
        snapshot.apply(msg.RefreshCommitMessage(2, 1))
        assert snapshot.aborted_epochs == 1
        assert snapshot.as_map() == {Rid(0, 0): (11,)}

    def test_explicit_abort(self, snapshot):
        snapshot.apply(msg.RefreshBeginMessage(1))
        snapshot.apply(upsert(0, 10))
        assert snapshot.abort_epoch()
        assert len(snapshot) == 0
        assert snapshot.aborted_epochs == 1
        assert not snapshot.abort_epoch()  # idempotent, nothing open

    def test_commit_count_mismatch_rolls_back(self, snapshot):
        snapshot.apply(msg.RefreshBeginMessage(1))
        snapshot.apply(upsert(0, 10))
        # The lossy link swallowed one message: sender counted 2.
        with pytest.raises(EpochError):
            snapshot.apply(msg.RefreshCommitMessage(1, 2))
        assert len(snapshot) == 0
        assert snapshot.aborted_epochs == 1
        assert snapshot.last_committed_epoch == 0

    def test_commit_for_wrong_epoch_rolls_back(self, snapshot):
        snapshot.apply(msg.RefreshBeginMessage(1))
        snapshot.apply(upsert(0, 10))
        with pytest.raises(EpochError):
            snapshot.apply(msg.RefreshCommitMessage(99, 1))
        assert len(snapshot) == 0

    def test_commit_with_no_epoch_open(self, snapshot):
        with pytest.raises(EpochError):
            snapshot.apply(msg.RefreshCommitMessage(3, 0))


class TestIdempotence:
    def test_duplicate_begin_is_a_no_op(self, snapshot):
        begin = msg.RefreshBeginMessage(5)
        snapshot.apply(begin)
        snapshot.apply(upsert(0, 10))
        snapshot.apply(begin)  # duplicate delivery must not reset stage
        assert snapshot.staged_messages == 1
        snapshot.apply(msg.RefreshCommitMessage(5, 1))
        assert len(snapshot) == 1

    def test_duplicate_staged_message_deduped(self, snapshot):
        snapshot.apply(msg.RefreshBeginMessage(5))
        message = upsert(0, 10)
        snapshot.apply(message)
        snapshot.apply(message)  # faulty link delivered it twice
        assert snapshot.staged_messages == 1
        snapshot.apply(msg.RefreshCommitMessage(5, 1))
        assert snapshot.as_map() == {Rid(0, 0): (10,)}

    def test_duplicate_commit_is_a_no_op(self, snapshot):
        snapshot.apply(msg.RefreshBeginMessage(5))
        snapshot.apply(upsert(0, 10))
        commit = msg.RefreshCommitMessage(5, 1)
        snapshot.apply(commit)
        snapshot.apply(commit)  # redelivered after the epoch closed
        assert snapshot.committed_epochs == 1
        assert len(snapshot) == 1


class TestEpochModes:
    def test_legacy_receivers_apply_immediately(self, snapshot):
        # Standalone receivers (ASAP push, direct refresher use) still
        # work without any epoch protocol.
        snapshot.apply(upsert(0, 10))
        assert len(snapshot) == 1

    def test_require_epochs_rejects_naked_data(self):
        strict = SnapshotTable(
            Database("remote"), "s", Schema.of(("v", "int")),
            require_epochs=True,
        )
        # The RefreshBegin was dropped by the link: the stream must fail
        # loudly instead of tearing the snapshot message by message.
        with pytest.raises(EpochError):
            strict.apply(upsert(0, 10))
        assert len(strict) == 0
