"""The pinned paper-figure states."""

from repro.relation.types import NULL
from repro.storage.rid import Rid
from repro.workload.employees import (
    EMPLOYEES,
    SNAP_TIME,
    figure1_simple_table,
    figure2_snapshot_before,
    figure5_base_table,
    figure5_snapshot_contents,
)


class TestFigure1State:
    def test_occupancy(self):
        table = figure1_simple_table()
        occupied = table.occupied()
        assert set(occupied) == {1, 2, 3, 5, 6}
        assert occupied[2] == ("Laura", 6)
        assert occupied[3] == ("Hamid", 15)

    def test_snapshot_before(self):
        before = figure2_snapshot_before()
        assert before[7] == ("Bob", 7)
        assert len(before) == 5


class TestFigure5State:
    def test_live_rows(self):
        db, table, addrs = figure5_base_table()
        live = {rid: row.values for rid, row in table.scan()}
        assert live == {
            addrs[1]: ("Bruce", 15),
            addrs[2]: ("Laura", 6),
            addrs[3]: ("Hamid", 15),
            addrs[5]: ("Mohan", 9),
            addrs[6]: ("Paul", 8),
        }

    def test_annotation_before_state(self):
        db, table, addrs = figure5_base_table()
        assert table.annotations(addrs[1]) == (Rid.BEGIN, 300)
        prev, ts = table.annotations(addrs[2])
        assert prev is NULL and ts is NULL
        prev, ts = table.annotations(addrs[3])
        assert prev == addrs[1] and ts is NULL
        assert table.annotations(addrs[5]) == (addrs[4], 230)
        assert table.annotations(addrs[6]) == (addrs[5], 200)

    def test_addresses_are_page_zero_slots(self):
        db, table, addrs = figure5_base_table()
        assert addrs[1] == Rid(0, 0)
        assert addrs[7] == Rid(0, 6)

    def test_snapshot_contents_keyed_by_rid(self):
        db, table, addrs = figure5_base_table()
        contents = figure5_snapshot_contents(addrs)
        assert contents[addrs[4]] == ("Jack", 6)

    def test_cast(self):
        assert EMPLOYEES[0] == ("Bruce", 15)
        assert len(EMPLOYEES) == 7
        assert SNAP_TIME == 330
