"""The randomized workload generator."""

import pytest

from repro.errors import ReproError
from repro.workload.generator import VALUE_SPACE, MixedWorkload, WorkloadMix


class TestWorkloadMix:
    def test_must_sum_to_one(self):
        with pytest.raises(ReproError):
            WorkloadMix(update=0.5, insert=0.2, delete=0.2)

    def test_non_negative(self):
        with pytest.raises(ReproError):
            WorkloadMix(update=1.2, insert=-0.2, delete=0.0)

    def test_presets(self):
        assert WorkloadMix.updates_only().update == 1.0
        churn = WorkloadMix.churn()
        assert churn.insert + churn.delete > churn.update


class TestBuild:
    def test_row_count(self):
        workload = MixedWorkload(200, 0.25, seed=1)
        assert workload.live_count == 200
        assert workload.table.row_count == 200

    def test_selectivity_approximate(self):
        workload = MixedWorkload(2000, 0.25, seed=1)
        qualified = len(workload.qualified_map())
        assert 0.20 < qualified / 2000 < 0.30

    def test_restriction_text_matches_cutoff(self):
        workload = MixedWorkload(10, 0.5, seed=1)
        assert workload.restriction_text == f"value < {VALUE_SPACE // 2}"

    def test_table_is_lazily_annotated(self):
        workload = MixedWorkload(10, 0.5, seed=1)
        assert workload.table.annotation_mode == "lazy"

    def test_deterministic_under_seed(self):
        a = MixedWorkload(100, 0.3, seed=42)
        b = MixedWorkload(100, 0.3, seed=42)
        a.apply_activity(0.5)
        b.apply_activity(0.5)
        assert a.qualified_map() == b.qualified_map()

    def test_validation(self):
        with pytest.raises(ReproError):
            MixedWorkload(0, 0.5)
        with pytest.raises(ReproError):
            MixedWorkload(10, 1.5)


class TestModificationStream:
    def test_operation_counts(self):
        workload = MixedWorkload(500, 0.25, seed=2)
        performed = workload.apply_activity(0.4)
        assert sum(performed.values()) == 200

    def test_mix_roughly_respected(self):
        workload = MixedWorkload(1000, 0.25, seed=3)
        performed = workload.apply_operations(1000)
        assert performed["update"] > performed["insert"]
        assert 100 < performed["insert"] < 300
        assert 100 < performed["delete"] < 300

    def test_live_tracking_consistent(self):
        workload = MixedWorkload(300, 0.25, seed=4)
        workload.apply_operations(600)
        scanned = {rid for rid, _ in workload.table.scan()}
        assert scanned == set(workload._positions)
        assert len(scanned) == workload.live_count

    def test_updates_only_preserves_population(self):
        workload = MixedWorkload(100, 0.25, seed=5, mix=WorkloadMix.updates_only())
        workload.apply_operations(500)
        assert workload.live_count == 100

    def test_preserve_qualification(self):
        workload = MixedWorkload(
            500, 0.3, seed=6, mix=WorkloadMix.updates_only(),
            preserve_qualification=True,
        )
        before = set(workload.qualified_map())
        workload.apply_operations(1000)
        assert set(workload.qualified_map()) == before

    def test_hotspot_concentrates_updates(self):
        uniform = MixedWorkload(
            500, 1.0, seed=7, mix=WorkloadMix.updates_only()
        )
        skewed = MixedWorkload(
            500, 1.0, seed=7, mix=WorkloadMix.updates_only(),
            hotspot=(0.95, 0.05),
        )
        from repro.core.fixup import base_fixup

        for workload in (uniform, skewed):
            base_fixup(workload.table)  # settle the NULLs from bulk load
            workload.apply_operations(400)

        def distinct_touched(workload):
            # Lazy annotations: updated rows have a NULL timestamp.
            from repro.relation.types import NULL
            from repro.table import TIMESTAMP

            position = workload.table.schema.position(TIMESTAMP)
            return sum(
                1
                for _, row in workload.table.scan(visible=False)
                if row[position] is NULL
            )

        assert distinct_touched(skewed) < distinct_touched(uniform) / 2

    def test_hotspot_validation(self):
        with pytest.raises(ReproError):
            MixedWorkload(10, 0.5, hotspot=(1.5, 0.1))

    def test_flipping_qualification_changes_membership(self):
        workload = MixedWorkload(
            500, 0.3, seed=6, mix=WorkloadMix.updates_only(),
            preserve_qualification=False,
        )
        before = set(workload.qualified_map())
        workload.apply_operations(1000)
        assert set(workload.qualified_map()) != before
