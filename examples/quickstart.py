"""Quickstart: define a snapshot, change the base table, refresh.

Run with:  python examples/quickstart.py

This is the paper's core loop in ~40 lines: a base table at one site, a
restricted snapshot at another, and differential refreshes that ship
only what changed.
"""

from repro import Database, SnapshotManager
from repro.net.channel import Channel


def main() -> None:
    # Two "sites": headquarters holds the base table, the branch holds
    # the snapshot.
    hq = Database("hq")
    branch = Database("branch")

    emp = hq.create_table("emp", [("name", "string"), ("salary", "int")])
    for name, salary in [
        ("Bruce", 15), ("Laura", 6), ("Hamid", 9),
        ("Mohan", 9), ("Paul", 8), ("Bob", 7),
    ]:
        emp.insert([name, salary])

    # CREATE SNAPSHOT lowpaid AS SELECT * FROM emp WHERE salary < 10
    # The manager compiles the definition, enables the hidden
    # annotations on emp, and populates the snapshot.
    channel = Channel("hq->branch")
    manager = SnapshotManager(hq)
    lowpaid = manager.create_snapshot(
        "lowpaid",
        "emp",
        where="salary < 10",
        method="differential",
        target_db=branch,
        channel=channel,
    )
    print("snapshot after initial population:")
    for row in lowpaid.rows():
        print("   ", row.values)

    # The base table keeps evolving...
    rids = {row.values[0]: rid for rid, row in emp.scan()}
    emp.update(rids["Hamid"], {"salary": 15})   # Hamid got a raise
    emp.delete(rids["Bob"])                     # Bob left
    emp.insert(["Dale", 5])                     # Dale joined

    # ...and one differential refresh brings the snapshot up to date.
    channel.stats.reset()
    result = lowpaid.refresh()
    print(f"\nrefresh shipped {result.entries_sent} entries "
          f"({channel.stats.bytes} bytes) for {emp.row_count} base rows")
    print("snapshot after refresh:")
    for row in lowpaid.rows():
        print("   ", row.values)


if __name__ == "__main__":
    main()
