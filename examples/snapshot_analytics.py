"""Querying snapshots with ordinary SQL, indexes, and cascades.

Run with:  python examples/snapshot_analytics.py

"Once a snapshot has been defined and initialized, its contents can be
accessed using ordinary queries.  Indices can be defined on a snapshot
to accelerate access to its contents and snapshots can serve as base
tables for other snapshots."

This example exercises all three sentences: an HQ sales table, a
regional snapshot queried with SELECT (aggregates, ORDER BY), a
secondary index that turns a report's restriction into an index scan,
and a second-level snapshot defined over the first.
"""

import random

from repro import Database, SecondaryIndex, SnapshotManager
from repro.query import parse_select, plan_select

N = 1_000


def main() -> None:
    rng = random.Random(5)
    hq = Database("hq")
    sales = hq.create_table(
        "sales",
        [("sale_id", "int"), ("region", "string"), ("amount", "int")],
    )
    sales.bulk_load(
        [[i, rng.choice(["east", "west"]), rng.randrange(10, 1000)] for i in range(N)]
    )

    # A regional snapshot at the east site.
    east_site = Database("east")
    manager = SnapshotManager(hq)
    east = manager.create_snapshot(
        "east_sales", "sales", where="region = 'east'",
        method="differential", target_db=east_site,
    )
    print(f"east snapshot: {len(east.table)} of {N} sales")

    # 1. Ordinary queries over the snapshot.
    report = east_site.query(
        "SELECT COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS avg "
        "FROM east_sales"
    )
    print("regional report:", report.to_dicts()[0])

    top = east_site.query(
        "SELECT sale_id, amount FROM east_sales ORDER BY amount DESC LIMIT 3"
    )
    print("top sales:", [tuple(r.values) for r in top])

    # 2. An index on the snapshot accelerates restricted reads.
    SecondaryIndex(east.table.storage, "amount")
    statement = parse_select(
        "SELECT sale_id FROM east_sales WHERE amount >= 900"
    )
    plan = plan_select(east_site, statement)
    print("\nplan for the big-sales report:")
    print(plan.explain())

    # 3. A snapshot over the snapshot: big east sales, one more hop out.
    analyst_site = Database("analyst")
    east_manager = SnapshotManager(east_site)
    big = east_manager.create_snapshot(
        "big_east_sales", "east_sales", where="amount >= 500",
        method="differential", target_db=analyst_site,
    )
    print(f"\ncascaded snapshot: {len(big.table)} big east sales")

    # A day of new sales at HQ propagates down both hops differentially.
    for i in range(50):
        sales.insert([N + i, rng.choice(["east", "west"]), rng.randrange(10, 1000)])
    hop1 = east.refresh()
    hop2 = big.refresh()
    print(f"after 50 new sales: hop1 shipped {hop1.entries_sent}, "
          f"hop2 shipped {hop2.entries_sent}")
    check = analyst_site.query(
        "SELECT COUNT(*) FROM big_east_sales WHERE amount < 500"
    )
    print("cascade integrity (big sales below 500):", check.scalar())


if __name__ == "__main__":
    main()
