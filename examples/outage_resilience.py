"""ASAP propagation vs periodic refresh under a network outage.

Run with:  python examples/outage_resilience.py

The paper rejects ASAP ("As Soon As Possible") update propagation partly
because "if the snapshot is remote from the base table and communication
between the base table and the snapshot is interrupted, the base table
changes must be buffered or rejected."  This example runs both designs
through the same workload with a mid-day link outage and prints what
each one had to do about it.
"""

import random

from repro import (
    AsapPropagator,
    Database,
    DifferentialRefresher,
    FaultyLink,
    Link,
    Projection,
    Restriction,
    RetryPolicy,
    SnapshotManager,
    SnapshotTable,
)

N = 300
OPERATIONS = 500
OUTAGE_WINDOW = (200, 350)


def main() -> None:
    rng = random.Random(9)

    # --- ASAP site ---------------------------------------------------------
    asap_db = Database("asap-hq")
    asap_table = asap_db.create_table("t", [("v", "int")], annotations="lazy")
    asap_rids = [asap_table.insert([i]) for i in range(N)]
    restriction = Restriction.parse("v < 1000000", asap_table.schema)
    projection = Projection(asap_table.schema)
    link = Link("asap-link")
    asap_snapshot = SnapshotTable(Database("asap-branch"), "s", projection.schema)
    for rid, row in asap_table.scan():
        asap_snapshot._upsert(rid, row.values)
    link.attach(asap_snapshot.receiver())
    propagator = AsapPropagator(asap_table, restriction, projection, link)

    # --- periodic-refresh site ----------------------------------------------
    diff_db = Database("diff-hq")
    diff_table = diff_db.create_table("t", [("v", "int")], annotations="lazy")
    diff_rids = diff_table.bulk_load([[i] for i in range(N)])
    diff_restriction = Restriction.parse("v < 1000000", diff_table.schema)
    diff_projection = Projection(diff_table.schema)
    diff_snapshot = SnapshotTable(
        Database("diff-branch"), "s", diff_projection.schema
    )
    refresher = DifferentialRefresher(diff_table)
    settle = refresher.refresh(
        0, diff_restriction, diff_projection, diff_snapshot.apply
    )

    # --- one day of updates with an outage in the middle ---------------------
    for op_no in range(OPERATIONS):
        if op_no == OUTAGE_WINDOW[0]:
            link.go_down()
            print(f"op {op_no}: link DOWN")
        if op_no == OUTAGE_WINDOW[1]:
            link.come_up()
            flushed = propagator.try_flush()
            print(f"op {op_no}: link UP — ASAP flushed {flushed} buffered messages")
        index = rng.randrange(N)
        value = rng.randrange(1_000_000)
        asap_table.update(asap_rids[index], {"v": value})
        diff_table.update(diff_rids[index], {"v": value})

    result = refresher.refresh(
        settle.new_snap_time, diff_restriction, diff_projection,
        diff_snapshot.apply,
    )

    print()
    print(f"{'':>32} {'ASAP':>8} {'periodic':>9}")
    print(f"{'messages for the day':>32} {propagator.propagated:>8} "
          f"{result.entries_sent:>9}")
    print(f"{'outage buffer high-water':>32} "
          f"{propagator.buffered_high_water:>8} {'n/a':>9}")
    same = asap_snapshot.as_map() == diff_snapshot.as_map()
    print(f"{'final snapshots identical':>32} {str(same):>8}")
    print()
    print("Periodic differential refresh simply runs after the outage and")
    print("coalesces repeated updates; ASAP pays one message per update and")
    print("must buffer every change made while the link is down.")
    print()
    faulty_refresh_demo()


def faulty_refresh_demo() -> None:
    """A refresh killed mid-stream rolls back and retries to the answer.

    The managed path wraps every refresh in an *epoch*: the receiver
    stages the stream and applies it atomically at commit, so a link
    that dies halfway never leaves the snapshot between states, and the
    retry simply replays from the unchanged SnapTime.
    """
    print("--- fault-tolerant refresh over a flaky link ---")
    hq = Database("flaky-hq")
    emp = hq.create_table("t", [("v", "int")], annotations="lazy")
    rids = [emp.insert([i]) for i in range(N)]
    link = FaultyLink(name="flaky-link")
    manager = SnapshotManager(
        hq, retry_policy=RetryPolicy(max_attempts=5, jitter=0.0)
    )
    snap = manager.create_snapshot("s", "t", channel=link)

    rng = random.Random(9)
    for _ in range(50):
        emp.update(rids[rng.randrange(N)], {"v": rng.randrange(1_000_000)})
    link.fail_at(7)  # the 8th message of the next refresh dies mid-flight
    result = snap.refresh()
    link.clear_faults()

    truth = {rid: row.values for rid, row in emp.scan(visible=True)}
    print(f"refresh attempts: {result.attempts} "
          f"(backoff waited {result.retry_wait:.2f}s of logical time)")
    print(f"epochs at the receiver: {snap.table.committed_epochs} committed, "
          f"{snap.table.aborted_epochs} rolled back")
    print(f"snapshot identical to re-evaluation: {snap.as_map() == truth}")


if __name__ == "__main__":
    main()
