"""The paper, stage by stage, on its own employee example.

Run with:  python examples/paper_walkthrough.py

Walks the four-step development of the differential refresh algorithm
exactly as the paper presents it, using the employee data from its
figures:

  1. the simple algorithm over a dense address space (Figures 1-2);
  2. explicit empty-region summaries;
  3. eager PrevAddr maintenance + BaseRefresh (Figure 3);
  4. lazy annotations + combined fix-up and refresh (Figures 5-7).
"""

from repro import (
    Database,
    DifferentialRefresher,
    EmptyRegionTable,
    Projection,
    RegionSnapshot,
    Restriction,
    SimpleSnapshot,
    SnapshotTable,
    base_refresh,
)
from repro.core.simple import SimpleElementMessage
from repro.relation.schema import Schema
from repro.workload.employees import SNAP_TIME, figure1_simple_table

EMPLOYEE_SCHEMA = Schema.of(("name", "string"), ("salary", "int"))


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def stage1_simple() -> None:
    banner("Stage 1 — the simple algorithm (dense address space, Figures 1-2)")
    table = figure1_simple_table()
    snapshot = SimpleSnapshot()
    print("base table elements with TimeStamp > SnapTime are transmitted:")

    def deliver(message):
        if isinstance(message, SimpleElementMessage):
            status = "empty" if message.empty else f"ok {message.values}"
            print(f"  addr {message.addr}: {status}")
        snapshot.apply(message)

    table.refresh(SNAP_TIME, lambda v: v[1] < 10, deliver)
    print(f"snapshot now holds {snapshot.as_map()}")
    print("impractical: a status+timestamp for EVERY possible address.")


def stage2_empty_regions() -> None:
    banner("Stage 2 — summarize unused addresses as empty regions")
    table = EmptyRegionTable(10, EMPLOYEE_SCHEMA)
    for addr, row in [(1, ("Bruce", 15)), (2, ("Laura", 6)), (5, ("Mohan", 9))]:
        table.insert(row, addr=addr)
    print("regions after three inserts:", table.regions())
    snapshot = RegionSnapshot()
    snap_time = table.refresh(0, lambda v: v[1] < 10, snapshot.apply)
    table.delete(2)
    print("regions after deleting addr 2:", table.regions())
    messages = []

    def deliver(message):
        messages.append(message)
        snapshot.apply(message)

    table.refresh(snap_time, lambda v: v[1] < 10, deliver)
    print("refresh transmitted:", messages[:-1])
    print(f"snapshot now holds {snapshot.as_map()}")


def stage3_eager() -> None:
    banner("Stage 3 — PrevAddr on each entry, maintained eagerly (Figure 3)")
    db = Database("eager-site")
    emp = db.create_table("emp", EMPLOYEE_SCHEMA, annotations="eager")
    rids = [emp.insert([n, s]) for n, s in [("Bruce", 15), ("Laura", 6), ("Mohan", 9)]]
    for figure_addr, rid in enumerate(rids, start=1):
        prev, ts = emp.annotations(rid)
        print(f"  entry {figure_addr}: PrevAddr={prev}, TimeStamp={ts}")
    print("deleting Laura updates Mohan's PrevAddr and TimeStamp eagerly:")
    emp.delete(rids[1])
    prev, ts = emp.annotations(rids[2])
    print(f"  Mohan: PrevAddr={prev}, TimeStamp={ts}")
    restriction = Restriction.parse("salary < 10", emp.schema)
    projection = Projection(emp.schema)
    snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
    result = base_refresh(emp, 0, restriction, projection, snapshot.apply)
    print(f"BaseRefresh shipped {result.entries_sent} entries, "
          f"fix-up writes: {result.fixup_writes} (always zero here)")


def stage4_lazy() -> None:
    banner("Stage 4 — batch maintenance: NULL annotations + fix-up (Figs 5-7)")
    db = Database("lazy-site")
    emp = db.create_table("emp", EMPLOYEE_SCHEMA, annotations="lazy")
    rids = [emp.insert([n, s]) for n, s in [("Bruce", 15), ("Laura", 6), ("Mohan", 9)]]
    print("after three inserts, annotations are all NULL (ops pay nothing):")
    for rid in rids:
        print(f"  {rid}: {emp.annotations(rid)}")
    restriction = Restriction.parse("salary < 10", emp.schema)
    projection = Projection(emp.schema)
    snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
    refresher = DifferentialRefresher(emp)
    result = refresher.refresh(0, restriction, projection, snapshot.apply)
    print(f"combined fix-up+refresh: {result.fixup_writes} repairs, "
          f"{result.entries_sent} entries shipped")
    print("annotations after the pass:")
    for rid in rids:
        print(f"  {rid}: {emp.annotations(rid)}")
    emp.update(rids[2], {"salary": 19})  # Mohan disqualified
    emp.delete(rids[1])  # Laura deleted
    result = refresher.refresh(
        result.new_snap_time, restriction, projection, snapshot.apply
    )
    print(f"after update+delete: {result.entries_sent} entries shipped, "
          f"snapshot = {snapshot.as_map()} (empty: both rows left)")


def main() -> None:
    stage1_simple()
    stage2_empty_regions()
    stage3_eager()
    stage4_lazy()
    print()
    print("Done — each stage trades base-operation cost against refresh "
          "complexity;\nstage 4 is the paper's production design.")


if __name__ == "__main__":
    main()
