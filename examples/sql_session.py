"""Everything through SQL: the R*-style statement interface.

Run with:  python examples/sql_session.py

R* exposed snapshots as statements — CREATE SNAPSHOT compiles the
definition, REFRESH SNAPSHOT executes the stored plan.  This example
drives the whole lifecycle through `Session.execute`, including a
snapshot placed at a remote site with `AT`.
"""

from repro import Database, Session


def main() -> None:
    hq = Session(Database("hq"))
    branch = Database("branch")
    hq.attach_site("branch", branch)

    hq.execute(
        "CREATE TABLE orders ("
        "  order_id int NOT NULL,"
        "  region string NOT NULL,"
        "  amount int NOT NULL,"
        "  note string NULL"
        ")"
    )
    hq.execute(
        "INSERT INTO orders VALUES "
        "(1, 'east', 120, NULL), (2, 'west', 80, 'rush'), "
        "(3, 'east', 430, NULL), (4, 'east', 45, NULL), "
        "(5, 'west', 300, NULL)"
    )
    hq.execute("CREATE INDEX ON orders (amount)")

    snapshot = hq.execute(
        "CREATE SNAPSHOT east_orders AS "
        "SELECT order_id, amount FROM orders "
        "WHERE region = 'east' "
        "REFRESH DIFFERENTIAL AT branch"
    )
    print("created:", snapshot.info.plan.definition.sql())
    print("branch now holds:",
          branch.query("SELECT COUNT(*) FROM east_orders").scalar(),
          "east orders")

    # business continues at HQ...
    hq.execute("INSERT INTO orders VALUES (6, 'east', 999, NULL)")
    hq.execute("UPDATE orders SET amount = amount + 10 WHERE order_id = 1")
    hq.execute("DELETE FROM orders WHERE order_id = 4")

    result = hq.execute("REFRESH SNAPSHOT east_orders")
    print(f"refresh shipped {result.entries_sent} entries")

    report = branch.query(
        "SELECT COUNT(*) AS n, SUM(amount) AS total FROM east_orders"
    )
    print("branch report:", report.to_dicts()[0])

    hq.execute("DROP SNAPSHOT east_orders")
    print("dropped; catalog snapshots:",
          [s.name for s in hq.db.catalog.snapshots()])


if __name__ == "__main__":
    main()
