"""Refresh-method selection: the cost model choosing for you.

Run with:  python examples/refresh_method_selection.py

"The expected costs of differential refresh and full refresh can be
computed when the snapshot is defined and the appropriate refresh method
can be selected."  This example defines snapshots with method="auto" at
different selectivities and expected update rates, shows what the cost
model picked, then *measures* both methods on the same workload to show
the picks were right.
"""

import random

from repro import CostModel, Database, RefreshMethod, SnapshotManager

N = 2_000
SCENARIOS = [
    # (name, where-clause ~selectivity, expected update fraction)
    ("wide & calm", "value < 800000", 0.05),
    ("wide & hot", "value < 800000", 2.00),
    ("narrow & calm", "value < 20000", 0.05),
]


def build_table(db):
    rng = random.Random(1)
    table = db.create_table(
        "data", [("key", "int"), ("value", "int")], annotations="lazy"
    )
    table.bulk_load([[i, rng.randrange(1_000_000)] for i in range(N)])
    return table, rng


def measure_both(manager, table, where, activity, rng):
    """Measured entries for one refresh of each method after activity."""
    differential = manager.create_snapshot(
        f"d_{abs(hash((where, activity)))%10**6}", "data",
        where=where, method="differential",
    )
    full = manager.create_snapshot(
        f"f_{abs(hash((where, activity)))%10**6}", "data",
        where=where, method="full",
    )
    live = [rid for rid, _ in table.scan()]
    for _ in range(int(activity * N)):
        table.update(live[rng.randrange(len(live))], {"value": rng.randrange(1_000_000)})
    d = differential.refresh()
    f = full.refresh()
    return d.entries_sent, f.entries_sent


def main() -> None:
    model = CostModel()
    print(f"{'scenario':>14} {'q_est':>6} {'u_exp':>6} {'picked':>13} "
          f"{'diff sent':>10} {'full sent':>10}")
    for name, where, expected_u in SCENARIOS:
        db = Database(f"site-{name}")
        table, rng = build_table(db)
        manager = SnapshotManager(db, cost_model=model)
        snap = manager.create_snapshot(
            "auto_pick", "data", where=where, method="auto",
            expected_update_fraction=expected_u,
        )
        q_est = table.estimate_selectivity(snap.info.plan.restriction)
        d_sent, f_sent = measure_both(manager, table, where, expected_u, rng)
        print(f"{name:>14} {q_est:>6.2f} {expected_u:>6.2f} "
              f"{snap.method.value:>13} {d_sent:>10} {f_sent:>10}")
    print()
    print("crossover activity (where full becomes cheaper, index available):")
    for q in (0.05, 0.25, 0.5, 1.0):
        crossover = model.crossover_activity(N, q, has_index=True)
        shown = "never" if crossover == float("inf") else f"u = {crossover:.2f}"
        print(f"  selectivity {q:>5.0%}: {shown}")
    assert RefreshMethod.AUTO is not None  # public API sanity


if __name__ == "__main__":
    main()
