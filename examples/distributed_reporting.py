"""Distributed reporting: regional snapshots as cheap replicas.

Run with:  python examples/distributed_reporting.py

The paper motivates snapshots as "a cost effective substitute for
replicated data in a distributed database system": each region keeps a
local, periodically refreshed snapshot of just its own orders, so
regional reports read locally while HQ keeps the single writable copy.

This example builds an HQ orders table, gives three regions their own
restricted+projected snapshots, simulates a day of order traffic, and
compares what differential refresh shipped against what naive full
refreshes would have cost.
"""

import random

from repro import Database, SnapshotManager
from repro.net.channel import Channel

REGIONS = ("east", "west", "north")
ORDERS = 600
DAY_OPS = 150


def main() -> None:
    rng = random.Random(7)
    hq = Database("hq")
    orders = hq.create_table(
        "orders",
        [
            ("order_id", "int"),
            ("region", "string"),
            ("amount", "int"),
            ("status", "string"),
        ],
    )
    next_id = [0]

    def new_order():
        order_id = next_id[0]
        next_id[0] += 1
        return [
            order_id,
            rng.choice(REGIONS),
            rng.randrange(10, 500),
            rng.choice(["open", "paid"]),
        ]

    orders.bulk_load([new_order() for _ in range(ORDERS)])

    manager = SnapshotManager(hq)
    sites = {}
    channels = {}
    for region in REGIONS:
        site = Database(f"site-{region}")
        channel = Channel(f"hq->{region}")
        snapshot = manager.create_snapshot(
            f"orders_{region}",
            "orders",
            where=f"region = '{region}'",
            columns=["order_id", "amount", "status"],
            method="differential",
            target_db=site,
            channel=channel,
        )
        sites[region] = snapshot
        channels[region] = channel
        print(f"{region}: initial snapshot holds {len(snapshot.table)} orders")

    # A day of business: new orders, payments, cancellations.
    for channel in channels.values():
        channel.stats.reset()
    live = [rid for rid, _ in orders.scan()]
    for _ in range(DAY_OPS):
        roll = rng.random()
        if roll < 0.4:
            live.append(orders.insert(new_order()))
        elif roll < 0.8:
            target = live[rng.randrange(len(live))]
            orders.update(target, {"status": "paid"})
        else:
            victim = live.pop(rng.randrange(len(live)))
            orders.delete(victim)

    # Nightly refresh, one region at a time.
    print(f"\nafter {DAY_OPS} operations on {orders.row_count} orders:")
    print(f"{'region':>8}  {'shipped':>8}  {'bytes':>8}  {'full would ship':>15}")
    for region in REGIONS:
        snapshot = sites[region]
        result = snapshot.refresh()
        full_size = sum(
            1 for _, row in orders.scan() if row.values[1] == region
        )
        print(
            f"{region:>8}  {result.entries_sent:>8}  "
            f"{channels[region].stats.bytes:>8}  {full_size:>15}"
        )
        # Each regional report now reads locally:
        local_total = sum(row.values[1] for row in snapshot.rows())
        print(f"{'':>8}  regional open+paid amount: {local_total}")


if __name__ == "__main__":
    main()
