"""FIG9 — message traffic for restrictive snapshots (q = 1 %, 5 %).

Figure 9 re-plots the Figure-8 comparison for highly restrictive
snapshots on a logarithmic axis.  The phenomenon it highlights: with few
qualified entries, the gaps between them are long, so almost any
modification in a gap forces the next qualified entry out — the
differential curve sits well above ideal (relatively) at low activity
and converges to the (low) full line quickly.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.measures import superfluous_ratio
from repro.bench.harness import traffic_sweep
from repro.workload.generator import WorkloadMix

from benchmarks._util import emit

SELECTIVITIES = (0.01, 0.05)
ACTIVITIES = (0.05, 0.10, 0.25, 0.50, 1.00, 2.00)
N = 4000  # larger table so q=1% still has ~40 qualified entries
SEED = 99


def _run_sweep():
    return traffic_sweep(
        SELECTIVITIES,
        ACTIVITIES,
        n=N,
        seed=SEED,
        mix=WorkloadMix.updates_only(),
        preserve_qualification=True,
    )


@pytest.mark.benchmark(group="fig9")
def test_fig9_restrictive_snapshots(benchmark):
    cells = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    rows = []
    for cell in cells:
        diff_pct = cell.percent("differential")
        rows.append(
            [
                f"{100 * cell.selectivity:.0f}",
                f"{100 * cell.activity:.0f}",
                f"{cell.percent('ideal'):.3f}",
                f"{diff_pct:.3f}",
                f"{cell.percent('full'):.3f}",
                f"{math.log10(diff_pct) if diff_pct > 0 else float('-inf'):.2f}",
                f"{100 * superfluous_ratio(cell.entries['differential'], cell.entries['ideal']):.0f}",
            ]
        )
    emit(
        "fig9",
        f"Figure 9: restrictive snapshots, log-scale view (simulation, N={N})",
        ["q%", "u%", "ideal%", "diff%", "full%", "log10(diff%)", "superfluous%"],
        rows,
    )
    for cell in cells:
        assert cell.entries["ideal"] <= cell.entries["differential"]
    # The superfluous share shrinks as activity grows (per selectivity).
    for q in SELECTIVITIES:
        series = [c for c in cells if c.selectivity == q]
        ratios = [
            superfluous_ratio(c.entries["differential"], c.entries["ideal"])
            for c in series
        ]
        assert ratios[0] >= ratios[-1]
