"""A3 — ASAP propagation vs periodic differential refresh.

Quantifies the paper's ASAP drawbacks on one workload:

- per-update message cost (ASAP sends every committed change; the
  differential refresh coalesces repeated changes to one entry);
- outage exposure (messages buffered while the link is down).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.asap import AsapPropagator
from repro.core.differential import DifferentialRefresher
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction
from repro.net.channel import Channel, Link

from benchmarks._util import emit

N = 800
HOT_FRACTION = 0.1  # updates concentrate on 10% of the rows
OPERATIONS = 2_000
OUTAGE_AT = 1_000
OUTAGE_LENGTH = 400


def _run_duel():
    rng = random.Random(3)

    # ASAP site.
    # Annotated like the differential site so both heaps lay out rows
    # identically and RIDs line up for the final equality check.
    asap_db = Database("asap")
    asap_table = asap_db.create_table("t", [("v", "int")], annotations="lazy")
    asap_rids = [asap_table.insert([i]) for i in range(N)]
    restriction = Restriction.parse("v < 1000000000", asap_table.schema)
    projection = Projection(asap_table.schema)
    link = Link()
    asap_snapshot = SnapshotTable(Database("r1"), "s1", projection.schema)
    for rid, row in asap_table.scan():
        asap_snapshot._upsert(rid, row.values)
    link.attach(asap_snapshot.receiver())
    propagator = AsapPropagator(asap_table, restriction, projection, link)

    # Differential site (identical workload replayed).
    diff_db = Database("diff")
    diff_table = diff_db.create_table("t", [("v", "int")], annotations="lazy")
    diff_rids = diff_table.bulk_load([[i] for i in range(N)])
    diff_restriction = Restriction.parse("v < 1000000000", diff_table.schema)
    diff_projection = Projection(diff_table.schema)
    channel = Channel()
    diff_snapshot = SnapshotTable(Database("r2"), "s2", diff_projection.schema)
    channel.attach(diff_snapshot.receiver())
    refresher = DifferentialRefresher(diff_table)
    first = refresher.refresh(0, diff_restriction, diff_projection, channel.send)
    channel.stats.reset()

    hot = int(N * HOT_FRACTION)
    for op_no in range(OPERATIONS):
        if op_no == OUTAGE_AT:
            link.go_down()
        if op_no == OUTAGE_AT + OUTAGE_LENGTH:
            link.come_up()
            propagator.try_flush()
        index = rng.randrange(hot)
        value = rng.randrange(10**6)
        asap_table.update(asap_rids[index], {"v": value})
        diff_table.update(diff_rids[index], {"v": value})
    link.come_up()
    propagator.try_flush()
    diff_result = refresher.refresh(
        first.new_snap_time, diff_restriction, diff_projection, channel.send
    )
    assert asap_snapshot.as_map() == diff_snapshot.as_map()
    return propagator, link, diff_result


@pytest.mark.benchmark(group="asap")
def test_asap_vs_differential(benchmark):
    propagator, link, diff_result = benchmark.pedantic(
        _run_duel, rounds=1, iterations=1
    )
    rows = [
        ["operations applied", OPERATIONS],
        ["ASAP messages sent", propagator.propagated],
        ["ASAP outage buffer high-water", propagator.buffered_high_water],
        ["differential entries (one refresh)", diff_result.entries_sent],
        [
            "coalescing factor",
            f"{propagator.propagated / max(diff_result.entries_sent, 1):.1f}x",
        ],
    ]
    emit(
        "asap",
        f"A3: ASAP vs periodic differential ({OPERATIONS} updates over "
        f"{int(N * HOT_FRACTION)} hot rows, {OUTAGE_LENGTH}-op outage)",
        ["metric", "value"],
        rows,
    )
    # Every update cost ASAP a message; differential sent one per hot row.
    assert propagator.propagated == OPERATIONS
    assert diff_result.entries_sent <= int(N * HOT_FRACTION)
    assert propagator.buffered_high_water > 0


def _time_drain(backlog: int) -> float:
    """Seconds to drain a post-outage backlog of ``backlog`` messages."""
    db = Database("drain")
    table = db.create_table("t", [("v", "int")])
    rid = table.insert([0])
    restriction = Restriction.parse("v < 1000000000", table.schema)
    projection = Projection(table.schema)
    link = Link()
    snapshot = SnapshotTable(Database("r"), "s", projection.schema)
    link.attach(snapshot.receiver())
    propagator = AsapPropagator(table, restriction, projection, link)
    link.go_down()
    for i in range(backlog):
        table.update(rid, {"v": i})
    assert propagator.buffered == backlog
    link.come_up()
    start = time.perf_counter()
    flushed = propagator.try_flush()
    elapsed = time.perf_counter() - start
    assert flushed == backlog
    propagator.detach()
    return elapsed


@pytest.mark.benchmark(group="asap")
def test_outage_drain_scales_linearly(benchmark):
    # Regression: try_flush used to pop(0) off a list, so recovery from
    # a long outage was quadratic in the backlog — exactly the moment a
    # site can least afford it.  With the deque drain, per-message cost
    # must stay flat as the backlog grows 4x.
    small, big = 1_000, 4_000
    per_small = min(_time_drain(small) for _ in range(3)) / small
    samples = [benchmark.pedantic(_time_drain, args=(big,), rounds=1, iterations=1)]
    samples += [_time_drain(big) for _ in range(2)]
    per_big = min(samples) / big
    ratio = per_big / per_small
    emit(
        "asap_drain",
        "A3b: outage-backlog drain scaling (per-message cost)",
        ["backlog", "per-message drain (us)"],
        [
            [small, f"{per_small * 1e6:.2f}"],
            [big, f"{per_big * 1e6:.2f}"],
            ["ratio (linear ~1x, quadratic ~4x)", f"{ratio:.2f}x"],
        ],
    )
    assert ratio < 3.0, f"drain is superlinear: {ratio:.2f}x per-message cost"
