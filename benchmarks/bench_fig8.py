"""FIG8 — message traffic vs update activity, selectivities >= 25 %.

Reproduces Figure 8 by simulation: for each selectivity q in
{25, 50, 75, 100} % and each update activity u, measure the entries
transmitted by the ideal, differential, and full refresh methods as a
percentage of the base table, next to the analytical prediction.

Expected shape (the paper's claims):

- ideal <= differential <= full at every point;
- at q = 100 % the differential and ideal curves coincide;
- the differential curve rises toward the full line as activity grows;
- the full line is flat (activity-independent).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import traffic_sweep
from repro.workload.generator import WorkloadMix

from benchmarks._util import emit

SELECTIVITIES = (0.25, 0.50, 0.75, 1.00)
ACTIVITIES = (0.05, 0.10, 0.25, 0.50, 1.00, 2.00)
N = 2000
SEED = 86


def _run_sweep():
    return traffic_sweep(
        SELECTIVITIES,
        ACTIVITIES,
        n=N,
        seed=SEED,
        mix=WorkloadMix.updates_only(),
        preserve_qualification=True,
    )


@pytest.mark.benchmark(group="fig8")
def test_fig8_traffic_by_activity(benchmark):
    cells = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    rows = []
    for cell in cells:
        rows.append(
            [
                f"{100 * cell.selectivity:.0f}",
                f"{100 * cell.activity:.0f}",
                f"{100 * cell.distinct_fraction:.1f}",
                f"{cell.percent('ideal'):.2f}",
                f"{cell.percent('differential'):.2f}",
                f"{cell.percent('full'):.2f}",
                f"{cell.model_percent('ideal'):.2f}",
                f"{cell.model_percent('differential'):.2f}",
                f"{cell.model_percent('full'):.2f}",
            ]
        )
    emit(
        "fig8",
        f"Figure 8: % of base-table tuples sent (simulation, N={N})",
        [
            "q%", "u%", "touched%",
            "ideal%", "diff%", "full%",
            "m:ideal%", "m:diff%", "m:full%",
        ],
        rows,
    )
    # Shape assertions: the figure's qualitative content.
    for cell in cells:
        assert cell.entries["ideal"] <= cell.entries["differential"]
        assert cell.entries["differential"] <= cell.entries["full"] + 1
    unrestricted = [c for c in cells if c.selectivity == 1.0]
    for cell in unrestricted:
        assert cell.entries["differential"] == pytest.approx(
            cell.entries["ideal"], rel=0.02, abs=3
        )
