"""A17 — columnar batch hot path: batch codec and batch scan vs per-row.

PR 6 rewrites the two inner loops that dominated profiles: the wire
codec decodes a whole frame through one generated flat-cursor pass
(``net/wirebatch.py``) instead of one ``_decode_one`` call per message,
and the refresh scan serves eligible pages from a cached columnar
:class:`~repro.storage.batch.PageBatch` instead of decoding a
``_LazyEntry`` per record.  Both rewrites are pinned byte-identical to
the per-row reference paths by hypothesis properties; this bench
measures what the identity tests cannot — that the batch paths are
actually *faster*:

- **codec**: encode/decode throughput of ``encode_batch``/``decode_batch``
  against the reference ``encode_frame_per_message``/
  ``decode_frame_per_message`` over the A16 synthetic entry stream
  (same machine, same process, so the ratio is hardware-independent);
- **scan**: refresh rows/s with ``batch_mode`` on vs off over a
  clustered-update workload on an eager-annotated table, asserting the
  message streams agree round for round.

The acceptance ratios are ≥5x codec decode and ≥3x scan throughput.
Absolute numbers land in ``BENCH_refresh.json`` under
``batch_hot_path`` together with a regression floor (half the recorded
decode rate); when the section already exists, the current run must
beat the recorded floor — CI smoke-runs this file so a revert to
per-message decode speed fails the build even though every
byte-identity test would still pass.

Runs as a pytest benchmark and as a plain script; ``BATCH_N`` overrides
the scan table size (the codec stream stays at 20k messages so the
recorded throughput is comparable across runs).
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

if __package__ in (None, ""):  # script mode: `python benchmarks/bench_batch.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core.differential import DifferentialRefresher
from repro.core.messages import EntryMessage
from repro.database import Database
from repro.expr.predicate import Projection, Restriction
from repro.net.wire import WireCodec
from repro.relation.row import Row, encode_row
from repro.relation.schema import Column, Schema
from repro.relation.types import IntType, StringType
from repro.storage.rid import Rid

from benchmarks._util import REPO_ROOT, emit, emit_json

N = int(os.environ.get("BATCH_N", "12000"))
#: Messages per codec timing run — fixed so recorded msgs/s compare
#: across runs; frames match A16's batching factor.
CODEC_MESSAGES = 20_000
FRAME_SIZE = 64
REPEATS = 15
#: Clustered update activity between timed refresh rounds.
SCAN_ROUNDS = 4
SCAN_FRACTION = 0.01
SEED = 1986

#: PR-4 recorded wire decode rate (BENCH_refresh.json at the time the
#: issue was filed) — the "~122k msgs/s" the ≥5x target is quoted
#: against.  Kept as a constant because re-running bench_wire now
#: overwrites that section with post-batch numbers.
PR4_DECODE_MSGS_PER_S = 122_059.9


def _schema() -> Schema:
    # The A16 accounts-style row, reused so codec numbers line up.
    return Schema(
        [
            Column("id", IntType(), nullable=False),
            Column("name", StringType()),
            Column("balance", IntType()),
            Column("branch", IntType()),
            Column("v", IntType()),
        ]
    )


def _best_interleaved(fns, repeats: int = REPEATS) -> "list[float]":
    """Best-of-N wall time per function, rounds interleaved.

    The minimum is the least noisy estimator, and interleaving the
    candidates round-robin means a slow system window (this runs in
    shared containers) penalizes all of them alike — the *ratios* stay
    honest even when absolute numbers wobble.
    """
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for index, fn in enumerate(fns):
            begin = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - begin)
    return [max(value, 1e-9) for value in best]


def _codec_throughput(n_messages: int = CODEC_MESSAGES) -> dict:
    """Batch vs per-message codec rates over the A16 entry stream."""
    schema = _schema()
    codec = WireCodec(schema)
    messages = []
    prev = Rid.BEGIN
    for i in range(n_messages):
        rid = Rid(i // 40, i % 40)
        values = (i, f"name-{i:05d}", i * 100, i % 13, i % 97)
        value_bytes = len(encode_row(schema, Row(values)))
        messages.append(EntryMessage(rid, prev, values, value_bytes))
        prev = rid
    chunks = [
        messages[i : i + FRAME_SIZE]
        for i in range(0, len(messages), FRAME_SIZE)
    ]

    frames = [codec.encode_batch(chunk) for chunk in chunks]
    reference = [codec.encode_frame_per_message(chunk) for chunk in chunks]
    for batch_frame, ref_frame in zip(frames, reference):
        assert batch_frame.data == ref_frame.data, (
            "batch encoder diverged from the per-message reference"
        )
    assert [repr(m) for m in codec.decode_batch(frames[0])] == [
        repr(m) for m in codec.decode_frame_per_message(frames[0])
    ]

    # Discarding loops, as in A16's `_throughput`: a comprehension would
    # keep every decoded message alive and time the GC, not the codec.
    def encode_all() -> None:
        for chunk in chunks:
            codec.encode_batch(chunk)

    def encode_ref_all() -> None:
        for chunk in chunks:
            codec.encode_frame_per_message(chunk)

    def decode_all() -> None:
        for frame in frames:
            codec.decode_batch(frame)

    def decode_ref_all() -> None:
        for frame in frames:
            codec.decode_frame_per_message(frame)

    encode_batch_s, encode_ref_s, decode_batch_s, decode_ref_s = (
        _best_interleaved([encode_all, encode_ref_all, decode_all, decode_ref_all])
    )

    payload = sum(frame.wire_size() for frame in frames)
    decode_rate = n_messages / decode_batch_s
    return {
        "messages": n_messages,
        "frame_size": FRAME_SIZE,
        "encoded_bytes": payload,
        "encode_msgs_per_s": n_messages / encode_batch_s,
        "encode_ref_msgs_per_s": n_messages / encode_ref_s,
        "encode_speedup": encode_ref_s / encode_batch_s,
        "decode_msgs_per_s": decode_rate,
        "decode_ref_msgs_per_s": n_messages / decode_ref_s,
        "decode_speedup": decode_ref_s / decode_batch_s,
        "decode_mb_per_s": payload / decode_batch_s / 1e6,
        "pr4_decode_msgs_per_s": PR4_DECODE_MSGS_PER_S,
        "vs_pr4": decode_rate / PR4_DECODE_MSGS_PER_S,
        # Regression floor for CI: half the recorded rate absorbs
        # machine-to-machine variance while still catching a fall back
        # to per-message speed (a ~6x drop).
        "floor_decode_msgs_per_s": int(decode_rate / 2),
    }


def _scan_mode(n: int, batch_mode: bool):
    """Refresh rounds over a clustered-update workload, one scan mode.

    Eager annotations keep every page free of NULL annotation fields,
    so in batch mode every page is batch-eligible; summaries stay off
    for the *skip* logic so each refresh really walks all n rows — the
    quantity being measured is scan cost per row, not pages avoided
    (that is A13's subject).
    """
    db = Database("bench", buffer_capacity=1024)
    table = db.create_table("t", _schema(), annotations="eager")
    rids = [
        table.insert([i, f"name-{i:05d}", i * 100, i % 13, i % 97])
        for i in range(n)
    ]
    restriction = Restriction.parse("v < 1000000000", table.schema)
    projection = Projection(table.schema)
    refresher = DifferentialRefresher(
        table, use_page_summaries=False, batch_mode=batch_mode
    )
    first = refresher.refresh(0, restriction, projection, lambda m: None)
    snap_time = first.new_snap_time

    rng = random.Random(SEED)
    count = max(1, int(n * SCAN_FRACTION))
    elapsed = 0.0
    streams = []
    result = first
    for _ in range(SCAN_ROUNDS):
        start = rng.randrange(0, n - count + 1)
        for rid in rids[start : start + count]:
            table.update(rid, {"v": rng.randrange(1_000_000)})
        messages: list = []
        begin = time.perf_counter()
        result = refresher.refresh(
            snap_time, restriction, projection, messages.append
        )
        elapsed += time.perf_counter() - begin
        snap_time = result.new_snap_time
        streams.append([repr(m) for m in messages])
    return elapsed, result, streams


def _scan_throughput(n: int) -> dict:
    t_row, r_row, s_row = _scan_mode(n, batch_mode=False)
    t_batch, r_batch, s_batch = _scan_mode(n, batch_mode=True)
    # Same seed, same updates: the refresh streams must agree per round.
    assert s_batch == s_row, "batch-mode stream diverged from row mode"
    rows_scanned = SCAN_ROUNDS * n
    return {
        "n": n,
        "rounds": SCAN_ROUNDS,
        "fraction": SCAN_FRACTION,
        "seconds_row": t_row,
        "seconds_batch": t_batch,
        "rows_per_sec_row": rows_scanned / t_row,
        "rows_per_sec_batch": rows_scanned / t_batch,
        "speedup": t_row / t_batch if t_batch else float("inf"),
        # Last-round counters: in batch mode every page should be
        # batch-served and (bar the updated cluster) reused from the
        # buffer-pool batch cache.
        "pages_scanned": r_batch.pages_scanned,
        "pages_batch_decoded": r_batch.pages_batch_decoded,
        "batches_reused": r_batch.batches_reused,
        "rows_materialized": r_batch.rows_materialized,
        "rows_decoded_row": r_row.rows_decoded,
        "rows_decoded_batch": r_batch.rows_decoded,
    }


def _recorded_floor() -> "float | None":
    """The decode floor recorded by the last full run, if any."""
    path = os.path.join(REPO_ROOT, "BENCH_refresh.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    section = data.get("batch_hot_path")
    if not isinstance(section, dict):
        return None
    throughput = section.get("throughput", {})
    floor = throughput.get("floor_decode_msgs_per_s")
    return float(floor) if floor else None


def _check(throughput: dict, scan: dict, n: int, floor: "float | None") -> None:
    # Machine-independent guard: the generated decoder must stay well
    # clear of per-message speed.  (The per-message reference itself got
    # ~30% faster in this PR from the shared varint tables, so the
    # same-session ratio understates the gain over the PR-4 decoder.)
    assert throughput["decode_speedup"] >= 4, (
        f"batch decode only {throughput['decode_speedup']:.1f}x the "
        f"per-message reference (floor 4x)"
    )
    assert throughput["encode_speedup"] >= 1, throughput["encode_speedup"]
    if floor is not None:
        assert throughput["decode_msgs_per_s"] >= floor, (
            f"decode throughput {throughput['decode_msgs_per_s']:,.0f} "
            f"msgs/s fell below the recorded floor {floor:,.0f}"
        )
    if n >= 8_000:
        # Absolute sanity bound on full-size runs.  The acceptance
        # number (>= 5x the PR-4 recorded 122k msgs/s) is the *recorded*
        # best-of-N in BENCH_refresh.json; a hard 5x here would flake
        # with container load, so the in-run bound allows for a heavily
        # loaded machine while still catching a real regression to
        # per-message speed.
        assert throughput["vs_pr4"] >= 3, (
            f"decode {throughput['decode_msgs_per_s']:,.0f} msgs/s is only "
            f"{throughput['vs_pr4']:.1f}x the PR-4 baseline (sanity bound 3x)"
        )
    assert scan["pages_batch_decoded"] > 0, scan
    assert scan["batches_reused"] > 0, scan
    # Batch pages decode full rows only for transmitted entries.
    assert scan["rows_decoded_batch"] < scan["rows_decoded_row"], scan
    # Wall time is only trustworthy at realistic sizes.
    if n >= 8_000:
        assert scan["speedup"] >= 3, (
            f"batch scan only {scan['speedup']:.1f}x row mode (target >= 3x)"
        )


def run(n: int = N):
    floor = _recorded_floor()
    throughput = _codec_throughput()
    scan = _scan_throughput(n)
    emit(
        "batch_hot_path",
        f"A17: batch vs per-row hot paths (codec {CODEC_MESSAGES} msgs, "
        f"scan N={n} x {SCAN_ROUNDS} rounds)",
        ["path", "per-row/msg", "batch", "speedup"],
        [
            [
                "codec encode msgs/s",
                f"{throughput['encode_ref_msgs_per_s']:,.0f}",
                f"{throughput['encode_msgs_per_s']:,.0f}",
                f"{throughput['encode_speedup']:.1f}x",
            ],
            [
                "codec decode msgs/s",
                f"{throughput['decode_ref_msgs_per_s']:,.0f}",
                f"{throughput['decode_msgs_per_s']:,.0f}",
                f"{throughput['decode_speedup']:.1f}x",
            ],
            [
                "scan rows/s",
                f"{scan['rows_per_sec_row']:,.0f}",
                f"{scan['rows_per_sec_batch']:,.0f}",
                f"{scan['speedup']:.1f}x",
            ],
        ],
    )
    print(
        f"decode {throughput['decode_msgs_per_s']:,.0f} msgs/s "
        f"({throughput['decode_mb_per_s']:.1f} MB/s), "
        f"{throughput['vs_pr4']:.1f}x the PR-4 recorded rate; "
        f"scan reuse {scan['batches_reused']}/{scan['pages_batch_decoded']} "
        f"pages, {scan['rows_materialized']} rows materialized"
    )
    emit_json("batch_hot_path", {"throughput": throughput, "scan": scan})
    _check(throughput, scan, n, floor)
    return {"throughput": throughput, "scan": scan}


def test_batch_hot_path():
    run(N)


if __name__ == "__main__":
    run(N)
