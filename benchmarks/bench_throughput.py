"""A5 — engineering throughput: refresh scan cost across table sizes.

Not a paper figure; this grounds the reproduction's engineering claims:
refresh cost is one sequential scan (linear in N), the buffer pool keeps
the scan hot, and a quiescent refresh does no annotation writes.
"""

from __future__ import annotations

import time

import pytest

from repro.core.differential import DifferentialRefresher
from repro.database import Database
from repro.expr.predicate import Projection, Restriction

from benchmarks._util import emit, emit_json

SIZES = (1_000, 2_000, 4_000, 8_000)


def _build(n):
    db = Database("bench", buffer_capacity=512)
    table = db.create_table("t", [("v", "int")], annotations="lazy")
    table.bulk_load([[i] for i in range(n)])
    restriction = Restriction.parse("v < 1000000", table.schema)
    projection = Projection(table.schema)
    refresher = DifferentialRefresher(table)
    first = refresher.refresh(0, restriction, projection, lambda m: None)
    return db, table, restriction, projection, refresher, first.new_snap_time


def _scaling_series():
    rows = []
    samples = []
    for n in SIZES:
        db, table, restriction, projection, refresher, snap_time = _build(n)
        start = time.perf_counter()
        result = refresher.refresh(
            snap_time, restriction, projection, lambda m: None
        )
        elapsed = time.perf_counter() - start
        rows.append(
            [
                n,
                f"{elapsed * 1000:.1f}",
                f"{n / elapsed / 1000:.0f}",
                result.fixup_writes,
                f"{100 * db.pool.stats.hit_rate:.0f}%",
            ]
        )
        samples.append(
            {
                "rows": n,
                "seconds": elapsed,
                "rows_per_sec": n / elapsed,
                "bytes_sent": result.bytes_sent,
                "pages_scanned": result.pages_scanned,
                "pages_skipped": result.pages_skipped,
                "rows_decoded": result.rows_decoded,
                "buffer_hit_rate": result.buffer_hit_rate,
            }
        )
    return rows, samples


@pytest.mark.benchmark(group="throughput")
def test_quiescent_refresh_scan_throughput(benchmark):
    rows, samples = benchmark.pedantic(_scaling_series, rounds=1, iterations=1)
    emit(
        "throughput",
        "A5: quiescent differential refresh scan cost vs table size",
        ["rows", "ms/refresh", "krows/s", "fixup writes", "buffer hit rate"],
        rows,
    )
    emit_json("throughput", samples)
    assert all(row[3] == 0 for row in rows)  # quiescent: no writes
    # Roughly linear: 8x the rows should not cost more than ~24x the time.
    smallest = float(rows[0][1])
    largest = float(rows[-1][1])
    assert largest < smallest * 24


@pytest.mark.benchmark(group="throughput")
def test_single_refresh_4k(benchmark):
    """A stable microbenchmark pytest-benchmark can do statistics on."""
    db, table, restriction, projection, refresher, snap_time = _build(4_000)

    def quiescent_refresh():
        refresher.refresh(snap_time, restriction, projection, lambda m: None)

    benchmark(quiescent_refresh)
