"""A9 — cascaded snapshots: per-hop traffic in a distribution tree.

"Snapshots can serve as base tables for other snapshots."  A three-level
chain (base → regional → leaf) receives a batch of base-table changes;
each hop's differential refresh ships only the changes that survive its
restriction, so traffic shrinks down the chain.
"""

from __future__ import annotations

import random

import pytest

from repro.core.manager import SnapshotManager
from repro.database import Database

from benchmarks._util import emit

N = 2_000
CHANGES = 200


def _run_chain():
    rng = random.Random(77)
    hq = Database("hq")
    emp = hq.create_table("emp", [("v", "int")])
    emp.bulk_load([[rng.randrange(1000)] for _ in range(N)])
    regional_site = Database("regional")
    leaf_site = Database("leaf")
    hq_manager = SnapshotManager(hq)
    regional = hq_manager.create_snapshot(
        "regional", "emp", where="v < 500", method="differential",
        target_db=regional_site,
    )
    leaf = SnapshotManager(regional_site).create_snapshot(
        "leaf", "regional", where="v < 100", method="differential",
        target_db=leaf_site,
    )
    live = [rid for rid, _ in emp.scan()]
    for _ in range(CHANGES):
        target = live[rng.randrange(len(live))]
        emp.update(target, {"v": rng.randrange(1000)})
    hop1 = regional.refresh()
    hop2 = leaf.refresh()
    # Verify end-to-end correctness through the chain.
    regional_truth = {
        rid: row.values for rid, row in emp.scan() if row.values[0] < 500
    }
    assert regional.as_map() == regional_truth
    leaf_values = sorted(v for v in leaf.as_map().values())
    expected = sorted(
        row.values for row in regional.rows() if row.values[0] < 100
    )
    assert leaf_values == expected
    return regional, leaf, hop1, hop2


@pytest.mark.benchmark(group="cascade")
def test_cascaded_snapshot_traffic(benchmark):
    regional, leaf, hop1, hop2 = benchmark.pedantic(
        _run_chain, rounds=1, iterations=1
    )
    rows = [
        ["base -> regional (v<500)", len(regional.table), hop1.entries_sent],
        ["regional -> leaf (v<100)", len(leaf.table), hop2.entries_sent],
    ]
    emit(
        "cascade",
        f"A9: per-hop differential traffic after {CHANGES} base updates "
        f"(N={N})",
        ["hop", "snapshot rows", "entries shipped"],
        rows,
    )
    assert hop2.entries_sent <= hop1.entries_sent
    assert hop1.entries_sent < N / 2
