"""A2 — refresh-method selection crossover.

"The expected costs of differential refresh and full refresh can be
computed when the snapshot is defined and the appropriate refresh method
can be selected."  This benchmark sweeps expected update activity and
shows the cost model switching from DIFFERENTIAL to FULL, and where the
crossover falls as a function of selectivity (with an index available to
the full method).
"""

from __future__ import annotations

import pytest

from repro.catalog.compiler import RefreshMethod
from repro.core.costmodel import CostModel

from benchmarks._util import emit

N = 10_000
ACTIVITIES = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0)
SELECTIVITIES = (0.01, 0.05, 0.25, 0.5, 1.0)


def _run_grid():
    model = CostModel()
    choices = {}
    crossovers = {}
    for q in SELECTIVITIES:
        for u in ACTIVITIES:
            choices[(q, u)] = model.choose(N, q, u, has_index=True)
        crossovers[q] = model.crossover_activity(N, q, has_index=True)
    return model, choices, crossovers


@pytest.mark.benchmark(group="selection")
def test_method_selection_crossover(benchmark):
    model, choices, crossovers = benchmark(_run_grid)
    rows = []
    for q in SELECTIVITIES:
        row = [f"{100 * q:.0f}"]
        for u in ACTIVITIES:
            row.append("D" if choices[(q, u)] is RefreshMethod.DIFFERENTIAL else "F")
        crossover = crossovers[q]
        row.append("inf" if crossover == float("inf") else f"{crossover:.2f}")
        rows.append(row)
    emit(
        "method_selection",
        f"A2: selected method by (selectivity, expected activity), N={N}, "
        "index available (D=differential, F=full)",
        ["q%"] + [f"u={u}" for u in ACTIVITIES] + ["crossover"],
        rows,
    )
    # Differential wins at low activity for wide snapshots...
    assert choices[(0.5, 0.01)] is RefreshMethod.DIFFERENTIAL
    # ...full wins for very selective snapshots when an index applies.
    assert choices[(0.01, 1.0)] is RefreshMethod.FULL
    # Crossover activity grows with selectivity.
    finite = [crossovers[q] for q in SELECTIVITIES if crossovers[q] != float("inf")]
    assert finite == sorted(finite)
