"""Shared reporting for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures as a plain
text series.  Output goes two places: stdout (visible with ``pytest -s``)
and ``benchmarks/results/<slug>.txt`` so a plain ``pytest benchmarks/
--benchmark-only`` run still leaves the series on disk for
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Any, Sequence

from repro.bench.reporting import ascii_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def emit(slug: str, title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Print a titled series and persist it under benchmarks/results/."""
    table = ascii_table(headers, rows)
    text = f"== {title} ==\n{table}\n"
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{slug}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


def emit_json(
    section: str, payload: Any, filename: str = "BENCH_refresh.json"
) -> str:
    """Merge ``payload`` under ``section`` into a JSON file at the repo root.

    The machine-readable perf trajectory: each benchmark owns one
    section, so successive runs (and future PRs) update their own slice
    without clobbering the others.
    """
    path = os.path.join(REPO_ROOT, filename)
    data: "dict[str, Any]" = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (json.JSONDecodeError, OSError):
            data = {}
    data[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def emit_lines(slug: str, title: str, lines: Sequence[str]) -> str:
    body = "\n".join(lines)
    text = f"== {title} ==\n{body}\n"
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
