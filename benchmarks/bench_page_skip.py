"""A13 — page-summary skip: refresh cost vs update activity.

The differential scan is O(table size) in the paper; with page summaries
it should be O(changed pages).  This bench sweeps update activity from
0.1 % to 50 % on an N-row table and refreshes twice per activity level —
once with page summaries off (the paper's full-scan baseline) and once
with them on — asserting that both modes produce the *identical* message
stream and byte count, then comparing wall time, pages skipped, and rows
decoded.

Updates are clustered in a contiguous address range (a "hot region"),
the workload page-granular skipping targets; one uniform-random row is
included for honesty — at ~140 rows per 4 KiB page, uniform updates
touch most pages long before 1 % activity, and summaries can only help
once update locality or activity leaves whole pages untouched.

Runs as a pytest benchmark and as a plain script; ``PAGE_SKIP_N``
overrides the table size (CI smoke-runs it at a small N).
"""

from __future__ import annotations

import os
import random
import sys
import time

if __package__ in (None, ""):  # script mode: `python benchmarks/bench_page_skip.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core.differential import DifferentialRefresher
from repro.database import Database
from repro.expr.predicate import Projection, Restriction

from benchmarks._util import emit, emit_json

N = int(os.environ.get("PAGE_SKIP_N", "16000"))
FRACTIONS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5)
SEED = 1986


def _run_mode(n: int, fraction: float, use_summaries: bool, uniform: bool):
    """Build, load, refresh, mutate, and time one re-refresh."""
    db = Database("bench", buffer_capacity=1024)
    table = db.create_table("t", [("v", "int")], annotations="lazy")
    rids = table.bulk_load([[i] for i in range(n)])
    restriction = Restriction.parse("v < 1000000000", table.schema)
    projection = Projection(table.schema)
    refresher = DifferentialRefresher(table, use_page_summaries=use_summaries)
    first = refresher.refresh(0, restriction, projection, lambda m: None)
    snap_time = first.new_snap_time

    rng = random.Random(SEED)
    count = max(1, int(n * fraction))
    if uniform:
        targets = rng.sample(rids, count)
    else:
        start = rng.randrange(0, n - count + 1)
        targets = rids[start : start + count]
    for rid in targets:
        table.update(rid, {"v": rng.randrange(1_000_000)})

    messages: list = []
    begin = time.perf_counter()
    result = refresher.refresh(
        snap_time, restriction, projection, messages.append
    )
    elapsed = time.perf_counter() - begin
    return elapsed, result, [repr(m) for m in messages]


def _sweep(n: int):
    rows = []
    samples = []
    for fraction, uniform in [(f, False) for f in FRACTIONS] + [(0.01, True)]:
        t_off, r_off, m_off = _run_mode(n, fraction, False, uniform)
        t_on, r_on, m_on = _run_mode(n, fraction, True, uniform)
        # Identical activity must produce identical refresh streams.
        assert m_on == m_off, (
            f"message streams diverge at fraction={fraction} "
            f"uniform={uniform}: {len(m_on)} vs {len(m_off)} messages"
        )
        assert r_on.bytes_sent == r_off.bytes_sent
        assert r_on.qualified == r_off.qualified
        speedup = t_off / t_on if t_on else float("inf")
        label = f"{100 * fraction:g}%" + (" (uniform)" if uniform else "")
        rows.append(
            [
                label,
                f"{t_off * 1000:.2f}",
                f"{t_on * 1000:.2f}",
                f"{speedup:.1f}x",
                f"{r_on.pages_skipped}/{r_on.pages_skipped + r_on.pages_scanned}",
                r_off.rows_decoded,
                r_on.rows_decoded,
            ]
        )
        samples.append(
            {
                "n": n,
                "fraction": fraction,
                "uniform": uniform,
                "seconds_off": t_off,
                "seconds_on": t_on,
                "speedup": speedup,
                "rows_per_sec_on": n / t_on if t_on else None,
                "bytes_sent": r_on.bytes_sent,
                "messages": r_on.messages_sent,
                "pages_scanned": r_on.pages_scanned,
                "pages_skipped": r_on.pages_skipped,
                "rows_decoded_off": r_off.rows_decoded,
                "rows_decoded_on": r_on.rows_decoded,
                "buffer_hit_rate_on": r_on.buffer_hit_rate,
                # Columnar-batch counters (A17).  This bench keeps the
                # per-row baseline (batch off), so these pin the
                # baseline at zero; bench_batch.py measures the batch
                # path itself.
                "pages_batch_decoded": r_on.pages_batch_decoded,
                "batches_reused": r_on.batches_reused,
                "rows_materialized": r_on.rows_materialized,
            }
        )
    return rows, samples


def _check(rows, samples, n: int) -> None:
    for sample in samples:
        if sample["uniform"]:
            continue
        if sample["fraction"] <= 0.01:
            # The deterministic wins: pages skipped, rows not decoded.
            assert sample["pages_skipped"] > 0, sample
            ratio = sample["rows_decoded_off"] / max(1, sample["rows_decoded_on"])
            assert ratio >= 5, (
                f"decoded-row ratio {ratio:.1f} < 5 at "
                f"fraction={sample['fraction']}"
            )
            # Wall time is only trustworthy at realistic sizes.
            if n >= 8_000:
                assert sample["speedup"] >= 5, (
                    f"speedup {sample['speedup']:.1f} < 5 at "
                    f"fraction={sample['fraction']}"
                )


def run(n: int = N):
    rows, samples = _sweep(n)
    emit(
        "page_skip",
        f"A13: refresh cost vs update activity, page summaries on/off (N={n})",
        [
            "activity",
            "off ms",
            "on ms",
            "speedup",
            "pages skipped",
            "decoded off",
            "decoded on",
        ],
        rows,
    )
    emit_json("page_skip", samples)
    _check(rows, samples, n)
    return samples


def test_page_skip_sweep():
    run(N)


if __name__ == "__main__":
    run(N)
