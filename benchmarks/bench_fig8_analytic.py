"""FIG8-ANALYTIC — the analysis half of Figure 8.

The paper evaluated the algorithm by "both simulation and analysis";
this benchmark regenerates the analytic curves on a dense activity grid
(cheap enough to sweep finely) and times one full grid evaluation.
"""

from __future__ import annotations

import pytest

from repro.analysis.model import TrafficModel

from benchmarks._util import emit

SELECTIVITIES = (0.25, 0.50, 0.75, 1.00)
ACTIVITIES = tuple(x / 20 for x in range(1, 41))  # 0.05 .. 2.00


def _evaluate_grid():
    grid = {}
    for q in SELECTIVITIES:
        grid[q] = TrafficModel(q).series(list(ACTIVITIES))
    return grid


@pytest.mark.benchmark(group="fig8")
def test_fig8_analytic_curves(benchmark):
    grid = benchmark(_evaluate_grid)
    rows = []
    # Print a readable subsample of the dense grid.
    for q in SELECTIVITIES:
        for point in grid[q][::5]:
            rows.append(
                [
                    f"{100 * q:.0f}",
                    f"{100 * point['activity']:.0f}",
                    f"{100 * point['ideal']:.2f}",
                    f"{100 * point['differential']:.2f}",
                    f"{100 * point['full']:.2f}",
                ]
            )
    emit(
        "fig8_analytic",
        "Figure 8 (analysis): % of base-table tuples sent",
        ["q%", "u%", "ideal%", "diff%", "full%"],
        rows,
    )
    for q in SELECTIVITIES:
        series = grid[q]
        diffs = [point["differential"] for point in series]
        assert diffs == sorted(diffs)  # monotone rise toward full
        assert diffs[-1] <= q + 1e-9
