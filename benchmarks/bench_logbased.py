"""A4 — log-scan refresh vs differential: culling cost and degradation.

Measures the paper's two warnings about using the recovery log as the
change buffer:

- "only a small portion of the log will involve updates to the base
  table for a particular snapshot" — the scanned/relevant ratio when
  other tables share the log;
- bounded log space forces a full refresh once the snapshot's history
  has been truncated.
"""

from __future__ import annotations

import random

import pytest

from repro.core.manager import SnapshotManager
from repro.database import Database

from benchmarks._util import emit

N = 600
OPERATIONS = 900
OTHER_TABLE_SHARE = 2  # other-table ops per target-table op


def _run_cull_cost():
    rng = random.Random(44)
    db = Database("hq")
    target = db.create_table("target", [("v", "int")])
    noise = db.create_table("noise", [("x", "int")])
    rids = [target.insert([i]) for i in range(N)]
    manager = SnapshotManager(db)
    snap = manager.create_snapshot(
        "logged", "target", where="v < 1000000", method="log"
    )
    for _ in range(OPERATIONS // (OTHER_TABLE_SHARE + 1)):
        target.update(rids[rng.randrange(N)], {"v": rng.randrange(10**6)})
        for _ in range(OTHER_TABLE_SHARE):
            noise.insert([rng.randrange(100)])
    result = snap.refresh()
    return result


def _run_truncation():
    db = Database("hq-small-log", wal_capacity_bytes=4_000)
    target = db.create_table("target", [("v", "int")])
    rids = [target.insert([i]) for i in range(N)]
    manager = SnapshotManager(db)
    snap = manager.create_snapshot(
        "logged", "target", where="v < 1000000", method="log"
    )
    rng = random.Random(45)
    for _ in range(OPERATIONS):
        target.update(rids[rng.randrange(N)], {"v": rng.randrange(10**6)})
    return snap.refresh()


@pytest.mark.benchmark(group="logbased")
def test_log_refresh_cull_cost(benchmark):
    result = benchmark.pedantic(_run_cull_cost, rounds=1, iterations=1)
    rows = [
        ["log records scanned", result.log_records_scanned],
        ["relevant (committed, target table)", result.relevant_records],
        [
            "cull efficiency",
            f"{100 * result.relevant_records / max(result.log_records_scanned, 1):.0f}%",
        ],
        ["entries transmitted", result.entries_sent],
        ["fell back to full", result.fell_back_full],
    ]
    emit(
        "logbased_cull",
        f"A4a: log-scan refresh culling cost ({OTHER_TABLE_SHARE} noise ops "
        "per relevant op)",
        ["metric", "value"],
        rows,
    )
    assert not result.fell_back_full
    # Most of the log is irrelevant to this snapshot.
    assert result.relevant_records < result.log_records_scanned / 2


@pytest.mark.benchmark(group="logbased")
def test_log_refresh_truncation_fallback(benchmark):
    result = benchmark.pedantic(_run_truncation, rounds=1, iterations=1)
    rows = [
        ["fell back to full", result.fell_back_full],
        ["entries transmitted", result.entries_sent],
    ]
    emit(
        "logbased_truncation",
        "A4b: bounded log forces full refresh after truncation",
        ["metric", "value"],
        rows,
    )
    assert result.fell_back_full
    assert result.entries_sent == N
