"""A20 — fleet-scale refresh: registry due-tracking and cohort drain.

Two questions, one experiment per answer:

1. **Due-tracking cost.**  The original scheduler walked every scheduled
   snapshot on every observed commit — O(fleet) per op.  The registry's
   per-base deadline heap pays O(1) amortized per op until a deadline
   actually crosses.  The microbench clocks both per-op at fleet sizes
   N/10N/50N; the registry's per-op cost must stay flat while the linear
   walk grows with the fleet.

2. **Fleet refresh throughput.**  With tens of snapshots per base
   table, refreshing each one solo re-scans the base once per snapshot.
   The claim protocol leases signature/band-clustered cohorts and each
   cohort rides ONE shared-scan pass, so pages scanned per drain scale
   with the number of *passes*, not the number of *snapshots*.  The
   drain is clocked against the independent-solo baseline at FLEET_N
   (floor: >= 3x at 1k and above, >= 2x for CI smoke sizes), and pages
   scanned per full drain are compared at FLEET_N vs 10*FLEET_N — a 10x
   fleet must cost well under 10x the pages (sub-linear growth).

Fleet staleness is reported alongside: p50/p99 of per-snapshot average
staleness (ops of unseen changes, time-averaged) after a dirty+drain
round, straight from the registry's closed-form accounting.

Runs as a pytest benchmark and as a plain script; ``FLEET_N`` overrides
the fleet size (CI smoke-runs it small).
"""

from __future__ import annotations

import os
import random
import sys

if __package__ in (None, ""):  # script mode: `python benchmarks/bench_fleet.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core.differential import DifferentialRefresher, RefreshCursor
from repro.core.group import GroupRefresher
from repro.core.registry import SnapshotRegistry
from repro.database import Database
from repro.expr.predicate import Projection, Restriction
from repro.txn.clock import wall_timer

from benchmarks._util import emit, emit_json

N = int(os.environ.get("FLEET_N", "1000"))
BASES = 8
ROWS_PER_BASE = 256
DIRTY_FRACTION = 0.05
#: Per-base predicate pool; round-robin assignment, so each base's fleet
#: collapses to four cohort signatures (shared-scan fan-out is what the
#: drain is selling).
PREDICATES = ("v < 192", "v >= 32", "v < 128", "v >= 0")
FLOOR_SPEEDUP_FULL = 3.0  # at FLEET_N >= 1000
FLOOR_SPEEDUP_SMOKE = 2.0
FLOOR_REGISTRY_SPEEDUP = 5.0  # vs the linear walk at the largest size
FLOOR_PAGES_RATIO = 8.0  # pages(10x fleet) / pages(1x) — sub-linear
SEED = 1986


# -- part 1: due-tracking microbench ------------------------------------------


def _measure_registry_per_op(n: int) -> float:
    registry = SnapshotRegistry()
    for i in range(n):
        registry.register(f"s{i}", "t", every_ops=10**9)
    timer = wall_timer()
    ops = 2_000
    begin = timer()
    for _ in range(ops):
        registry.observe("t", 1)
    return (timer() - begin) / ops


def _measure_linear_walk_per_op(n: int) -> float:
    # The pre-registry scheduler hot path: visit every entry per op.
    entries = [{"pending": 0, "every": 10**9} for _ in range(n)]
    timer = wall_timer()
    ops = max(10, 200_000 // n)
    begin = timer()
    for _ in range(ops):
        for entry in entries:
            entry["pending"] += 1
            if entry["pending"] >= entry["every"]:
                entry["pending"] = 0
    return (timer() - begin) / ops


# -- part 2: fleet drain vs independent solo ----------------------------------


class _FleetWorld:
    """FLEET_N snapshots over BASES small tables, due and dirty."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.db = Database("bench-fleet", buffer_capacity=1024)
        self.tables = []
        self.projections = []
        self.restrictions = []
        for b in range(BASES):
            table = self.db.create_table(
                f"t{b}", [("v", "int")], annotations="lazy"
            )
            table.bulk_load([[i] for i in range(ROWS_PER_BASE)])
            self.tables.append(table)
            self.projections.append(Projection(table.schema))
            self.restrictions.append(
                [Restriction.parse(p, table.schema) for p in PREDICATES]
            )
        self.registry = SnapshotRegistry(cohort_size=max(64, n))
        #: member index -> (base index, restriction, cache, snap_time)
        self.members: "list[dict]" = []
        for i in range(n):
            b = i % BASES
            restriction = self.restrictions[b][i % len(PREDICATES)]
            self.members.append(
                {"base": b, "restriction": restriction, "cache": {}, "snap": 0}
            )
            self.registry.register(
                str(i), f"t{b}", every_ops=1, restriction=restriction
            )
        self._prime()
        self._dirty()

    def _cursor(self, i: int, sink) -> RefreshCursor:
        member = self.members[i]
        return RefreshCursor(
            member["snap"],
            member["restriction"],
            self.projections[member["base"]],
            sink,
            cache=member["cache"],
            name=str(i),
        )

    def _prime(self) -> None:
        # One shared pass per base brings every member to "fresh": the
        # measured phase below is pure differential work in both worlds.
        by_base: "dict[int, list[int]]" = {}
        for i, member in enumerate(self.members):
            by_base.setdefault(member["base"], []).append(i)
        for b, indices in by_base.items():
            cursors = [self._cursor(i, lambda m: None) for i in indices]
            outcome = GroupRefresher(
                self.tables[b], use_page_summaries=True
            ).refresh_group(cursors)
            assert not outcome.errors
            for i in indices:
                self.members[i]["snap"] = outcome.per_snapshot[
                    str(i)
                ].new_snap_time

    def _dirty(self) -> None:
        rng = random.Random(SEED)
        count = max(1, int(ROWS_PER_BASE * DIRTY_FRACTION))
        for b, table in enumerate(self.tables):
            rids = [rid for rid, _ in table.scan(visible=True)]
            for rid in rng.sample(rids, count):
                table.update(rid, {"v": rng.randrange(ROWS_PER_BASE)})
            self.registry.observe(f"t{b}", count)


def _measure_solo(n: int) -> dict:
    world = _FleetWorld(n)
    timer = wall_timer()
    refreshed = entries = pages = 0
    begin = timer()
    for i, member in enumerate(world.members):
        refresher = DifferentialRefresher(
            world.tables[member["base"]], use_page_summaries=True
        )
        result = refresher.refresh(
            member["snap"],
            member["restriction"],
            world.projections[member["base"]],
            lambda m: None,
            cache=member["cache"],
        )
        member["snap"] = result.new_snap_time
        refreshed += 1
        entries += result.entries_sent
        pages += result.pages_scanned
    seconds = timer() - begin
    return {
        "refreshed": refreshed,
        "entries": entries,
        "pages_scanned": pages,
        "seconds": seconds,
    }


def _measure_drain(n: int) -> dict:
    world = _FleetWorld(n)
    registry = world.registry
    timer = wall_timer()
    refreshed = entries = pages = passes = 0
    begin = timer()
    while True:
        claim = registry.claim_cohort("bench-worker")
        if claim is None:
            break
        indices = [int(name) for name in claim.cohort.members]
        b = world.members[indices[0]]["base"]
        cursors = [world._cursor(i, lambda m: None) for i in indices]
        outcome = GroupRefresher(
            world.tables[b], use_page_summaries=True
        ).refresh_group(cursors)
        assert not outcome.errors
        shipped = {}
        for i in indices:
            result = outcome.per_snapshot[str(i)]
            world.members[i]["snap"] = result.new_snap_time
            shipped[str(i)] = result.entries_sent
            entries += result.entries_sent
        registry.complete(claim, shipped=shipped)
        refreshed += len(indices)
        pages += outcome.pass_result.pages_scanned
        passes += 1
    seconds = timer() - begin
    staleness = sorted(
        record.average_staleness for record in registry.records()
    )

    def pct(q: float) -> float:
        return staleness[min(len(staleness) - 1, int(q * len(staleness)))]

    return {
        "refreshed": refreshed,
        "entries": entries,
        "pages_scanned": pages,
        "passes": passes,
        "seconds": seconds,
        "staleness_p50": pct(0.50),
        "staleness_p99": pct(0.99),
    }


def run(n: int = N):
    # Part 1: due-tracking per-op cost, fleet sizes n / 10n / 50n.
    tracking = []
    for size in (n, 10 * n, 50 * n):
        reg_us = 1e6 * _measure_registry_per_op(size)
        walk_us = 1e6 * _measure_linear_walk_per_op(size)
        tracking.append(
            {
                "fleet": size,
                "registry_us_per_op": reg_us,
                "linear_walk_us_per_op": walk_us,
                "speedup": walk_us / reg_us if reg_us else float("inf"),
            }
        )
    emit(
        "fleet_tracking",
        f"A20a: due-tracking cost per observed op (fleet {n}..{50 * n})",
        ["fleet", "registry µs/op", "linear walk µs/op", "speedup"],
        [
            [
                t["fleet"],
                f"{t['registry_us_per_op']:.2f}",
                f"{t['linear_walk_us_per_op']:.2f}",
                f"{t['speedup']:.1f}x",
            ]
            for t in tracking
        ],
    )

    # Part 2: drain vs solo at n; drain alone at 10n for page growth.
    solo = _measure_solo(n)
    drain = _measure_drain(n)
    assert solo["refreshed"] == drain["refreshed"] == n
    # Same dirty pattern, same predicates: both worlds ship the same
    # entries — the drain just pays far fewer scans for them.
    assert solo["entries"] == drain["entries"]
    drain_10x = _measure_drain(10 * n)
    speedup = solo["seconds"] / drain["seconds"] if drain["seconds"] else 0.0
    pages_ratio = (
        drain_10x["pages_scanned"] / drain["pages_scanned"]
        if drain["pages_scanned"]
        else 0.0
    )
    emit(
        "fleet_refresh",
        f"A20b: fleet drain vs independent solo refresh (FLEET_N={n})",
        ["mode", "fleet", "refreshes/s", "pages scanned", "passes", "p50/p99 staleness"],
        [
            [
                "solo",
                n,
                f"{n / solo['seconds']:.0f}",
                solo["pages_scanned"],
                n,
                "-",
            ],
            [
                "cohort drain",
                n,
                f"{n / drain['seconds']:.0f}",
                drain["pages_scanned"],
                drain["passes"],
                f"{drain['staleness_p50']:.1f}/{drain['staleness_p99']:.1f}",
            ],
            [
                "cohort drain",
                10 * n,
                f"{10 * n / drain_10x['seconds']:.0f}",
                drain_10x["pages_scanned"],
                drain_10x["passes"],
                f"{drain_10x['staleness_p50']:.1f}/{drain_10x['staleness_p99']:.1f}",
            ],
        ],
    )

    floor_speedup = FLOOR_SPEEDUP_FULL if n >= 1000 else FLOOR_SPEEDUP_SMOKE
    emit_json(
        "fleet_refresh",
        {
            "fleet_n": n,
            "tracking": tracking,
            "solo": solo,
            "drain": drain,
            "drain_10x": drain_10x,
            "throughput_speedup": speedup,
            "pages_ratio_10x": pages_ratio,
            "floor": {
                "min_throughput_speedup": floor_speedup,
                "measured_speedup": speedup,
                "max_pages_ratio_10x": FLOOR_PAGES_RATIO,
                "measured_pages_ratio_10x": pages_ratio,
                "min_registry_speedup_at_largest": FLOOR_REGISTRY_SPEEDUP,
                "measured_registry_speedup_at_largest": tracking[-1]["speedup"],
            },
        },
    )

    assert speedup >= floor_speedup, (speedup, floor_speedup)
    assert pages_ratio <= FLOOR_PAGES_RATIO, pages_ratio
    assert tracking[-1]["speedup"] >= FLOOR_REGISTRY_SPEEDUP, tracking[-1]
    return {"tracking": tracking, "solo": solo, "drain": drain}


def test_fleet_refresh():
    run(N)


if __name__ == "__main__":
    run(N)
