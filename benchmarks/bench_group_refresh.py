"""A15 — shared-scan group refresh: one pass vs N independent scans.

With a fleet of snapshots on one base table, independent differential
refreshes pay the address-order pass once *per snapshot*; the
:class:`~repro.core.group.GroupRefresher` pays it once per *fleet*.
This bench sweeps fan-out from 1 to 32 at a fixed table size and
measures, for both page-summary modes:

- total pages scanned and rows decoded — the group pass against the sum
  over independent refreshes, and against a **single** independent
  refresh (the floor: one pass can't read less than one pass);
- wall-clock per served snapshot, and the fleet-level speedup.

The headline asserts: at fan-out >= 8 the group pass's physical work
(pages scanned, rows decoded) stays within 2x of a single independent
refresh — i.e. the pass really is shared, not N scans in a trench coat.

Runs as a pytest benchmark and as a plain script; ``GROUP_N`` overrides
the table size (CI smoke-runs it small), ``GROUP_FANOUT_MAX`` caps the
sweep.
"""

from __future__ import annotations

import os
import random
import sys
import time

if __package__ in (None, ""):  # script mode: `python benchmarks/bench_group_refresh.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core.differential import DifferentialRefresher, RefreshCursor
from repro.core.group import GroupRefresher
from repro.database import Database
from repro.expr.predicate import Projection, Restriction

from benchmarks._util import emit, emit_json

N = int(os.environ.get("GROUP_N", "8000"))
FANOUT_MAX = int(os.environ.get("GROUP_FANOUT_MAX", "32"))
FANOUTS = tuple(f for f in (1, 2, 4, 8, 16, 32) if f <= FANOUT_MAX)
FRACTION = 0.02  # clustered update activity between refreshes
SEED = 1986


class _World:
    """A base table with a fleet of k snapshot-refresh states.

    Deterministic given (n, k, seed): two worlds built with the same
    arguments are byte-for-byte the same, so one can run independent
    refreshes and the other the group pass over identical states.
    """

    def __init__(self, n: int, k: int, use_summaries: bool) -> None:
        self.db = Database("bench", buffer_capacity=1024)
        self.table = self.db.create_table("t", [("v", "int")], annotations="lazy")
        self.rids = self.table.bulk_load([[i] for i in range(n)])
        self.projection = Projection(self.table.schema)
        # Distinct selectivities across the fleet: cutoffs spread over
        # the upper three quarters of the value domain.
        self.restrictions = [
            Restriction.parse(
                f"v < {n // 4 + ((3 * n // 4) * (i + 1)) // k}",
                self.table.schema,
            )
            for i in range(k)
        ]
        self.refreshers = [
            DifferentialRefresher(self.table, use_page_summaries=use_summaries)
            for _ in range(k)
        ]
        self.use_summaries = use_summaries
        self.caches: "list[dict]" = [{} for _ in range(k)]
        self.snap_times = [0] * k
        for i in range(k):
            self.solo(i)  # initial population primes times and caches
        rng = random.Random(SEED)
        count = max(1, int(n * FRACTION))
        start = rng.randrange(0, n - count + 1)
        for rid in self.rids[start : start + count]:
            self.table.update(rid, {"v": rng.randrange(n)})

    def solo(self, i: int):
        result = self.refreshers[i].refresh(
            self.snap_times[i],
            self.restrictions[i],
            self.projection,
            lambda m: None,
            cache=self.caches[i],
        )
        self.snap_times[i] = result.new_snap_time
        return result

    def group(self):
        cursors = [
            RefreshCursor(
                self.snap_times[i],
                self.restrictions[i],
                self.projection,
                lambda m: None,
                cache=self.caches[i] if self.use_summaries else None,
                name=str(i),
            )
            for i in range(len(self.restrictions))
        ]
        return GroupRefresher(
            self.table, use_page_summaries=self.use_summaries
        ).refresh_group(cursors)


def _measure(n: int, k: int, use_summaries: bool):
    # World A: k independent refreshes, one after another.
    independent = _World(n, k, use_summaries)
    begin = time.perf_counter()
    solo_results = [independent.solo(i) for i in range(k)]
    t_indep = time.perf_counter() - begin
    single = solo_results[0]  # the floor: one pass of one snapshot

    # World B: the identical state served by ONE shared pass.
    grouped = _World(n, k, use_summaries)
    begin = time.perf_counter()
    outcome = grouped.group()
    t_group = time.perf_counter() - begin
    assert not outcome.errors
    stats = outcome.pass_result

    # Same state, same predicates: the traffic must agree.
    assert stats.qualified == sum(r.qualified for r in solo_results)
    assert stats.entries_sent == sum(r.entries_sent for r in solo_results)

    return {
        "n": n,
        "fanout": k,
        "summaries": use_summaries,
        "seconds_independent": t_indep,
        "seconds_group": t_group,
        "speedup": t_indep / t_group if t_group else float("inf"),
        "per_snapshot_ms_independent": 1000 * t_indep / k,
        "per_snapshot_ms_group": 1000 * t_group / k,
        "pages_scanned_single": single.pages_scanned,
        "pages_scanned_independent": sum(r.pages_scanned for r in solo_results),
        "pages_scanned_group": stats.pages_scanned,
        "rows_decoded_single": single.rows_decoded,
        "rows_decoded_independent": sum(r.rows_decoded for r in solo_results),
        "rows_decoded_group": stats.rows_decoded,
        "entries_evaluated_group": stats.entries_evaluated,
        "pages_fast_forwarded_group": stats.pages_fast_forwarded,
        "decode_savings": outcome.decode_savings,
        "entries_sent": stats.entries_sent,
        "bytes_sent": stats.bytes_sent,
        # Columnar-batch counters (A17).  The group baseline keeps
        # batch off, so these pin it at zero; bench_batch.py measures
        # the batch path itself.
        "pages_batch_decoded_group": stats.pages_batch_decoded,
        "batches_reused_group": stats.batches_reused,
        "rows_materialized_group": stats.rows_materialized,
    }


def _check(samples) -> None:
    for sample in samples:
        if sample["fanout"] < 8:
            continue
        # The shared pass must cost one pass, not N: within 2x of a
        # SINGLE independent refresh's physical reads.
        assert sample["pages_scanned_group"] <= 2 * max(
            1, sample["pages_scanned_single"]
        ), sample
        assert sample["rows_decoded_group"] <= 2 * max(
            1, sample["rows_decoded_single"]
        ), sample
        # And each decoded entry served every cursor.
        assert (
            sample["entries_evaluated_group"]
            >= sample["fanout"] * 0.5 * sample["rows_decoded_group"]
        ), sample


def run(n: int = N):
    rows = []
    samples = []
    for use_summaries in (False, True):
        for k in FANOUTS:
            sample = _measure(n, k, use_summaries)
            samples.append(sample)
            rows.append(
                [
                    k,
                    "on" if use_summaries else "off",
                    f"{sample['per_snapshot_ms_independent']:.2f}",
                    f"{sample['per_snapshot_ms_group']:.2f}",
                    f"{sample['speedup']:.1f}x",
                    f"{sample['pages_scanned_independent']}"
                    f"/{sample['pages_scanned_group']}",
                    f"{sample['rows_decoded_independent']}"
                    f"/{sample['rows_decoded_group']}",
                    f"{sample['decode_savings']:.1f}",
                ]
            )
    emit(
        "group_refresh",
        f"A15: group refresh vs independent, fan-out sweep (N={n})",
        [
            "fanout",
            "summaries",
            "indep ms/snap",
            "group ms/snap",
            "speedup",
            "pages indep/group",
            "decoded indep/group",
            "decode savings",
        ],
        rows,
    )
    emit_json("group_refresh", samples)
    _check(samples)
    return samples


def test_group_refresh_sweep():
    run(N)


if __name__ == "__main__":
    run(N)
