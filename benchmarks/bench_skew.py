"""A10 — update skew: where differential refresh shines brightest.

The analysis behind Figures 8-9 assumes uniformly random updates; real
workloads are skewed, and skew is differential refresh's best case:
repeated modifications of hot entries coalesce into one transmission
each ("only the most recent change to each entry"), while full refresh
ships everything regardless.  This benchmark fixes the operation count
and sweeps the skew from uniform to 99/1.
"""

from __future__ import annotations

import pytest

from repro.workload.generator import MixedWorkload, WorkloadMix

from benchmarks._util import emit

N = 1_500
ACTIVITY = 0.5
SELECTIVITY = 0.5
SKEWS = [None, (0.5, 0.2), (0.8, 0.2), (0.9, 0.1), (0.99, 0.01)]


def _measure(hotspot):
    from repro.catalog.compiler import RefreshMethod
    from repro.core.manager import SnapshotManager

    workload = MixedWorkload(
        N,
        SELECTIVITY,
        seed=10,
        mix=WorkloadMix.updates_only(),
        preserve_qualification=True,
        hotspot=hotspot,
    )
    manager = SnapshotManager(workload.db)
    snapshots = {
        name: manager.create_snapshot(
            f"s_{name}", workload.table.name,
            where=workload.restriction_text, method=method,
        )
        for name, method in (
            ("differential", RefreshMethod.DIFFERENTIAL),
            ("ideal", RefreshMethod.IDEAL),
            ("full", RefreshMethod.FULL),
        )
    }
    workload.apply_activity(ACTIVITY)
    entries = {}
    for name, snapshot in snapshots.items():
        entries[name] = snapshot.refresh().entries_sent
        assert snapshot.as_map() == workload.qualified_map() or name != "differential"
    return entries


def _sweep():
    rows = []
    for hotspot in SKEWS:
        entries = _measure(hotspot)
        label = "uniform" if hotspot is None else f"{hotspot[0]:.0%}/{hotspot[1]:.0%}"
        rows.append(
            [
                label,
                entries["ideal"],
                entries["differential"],
                entries["full"],
                f"{100 * entries['differential'] / N:.1f}",
            ]
        )
    return rows


@pytest.mark.benchmark(group="skew")
def test_traffic_under_update_skew(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "skew",
        f"A10: entries sent vs update skew "
        f"(N={N}, q={SELECTIVITY}, u={ACTIVITY}, updates only)",
        ["skew (ops/rows)", "ideal", "differential", "full", "diff % of base"],
        rows,
    )
    differential = [row[2] for row in rows]
    # Stronger skew -> fewer distinct entries touched -> less traffic.
    assert differential[-1] < differential[0]
    full = [row[3] for row in rows]
    assert max(full) - min(full) < N * 0.05  # full is skew-blind
