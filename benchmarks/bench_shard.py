"""A19 — sharded parallel refresh: critical-path speedup and merge cost.

The sharded pass splits the combined fix-up + refresh scan across
RID-range workers and pays a strictly sequential merge at the end.  On
this single-core, GIL-bound harness the workers cannot *actually*
overlap, so the bench measures what sharding buys an N-core deployment
the way queueing analyses do: each worker's wall time is clocked
individually (``SerialShardExecutor`` + an injected timer keeps the
measurements contention-free), and

    critical_path_speedup = T_monolithic / (max worker wall + merge wall)

i.e. the pass finishes when its slowest worker does, plus the merge
that cannot be parallelized.  The sweep covers shard counts 1–8 against
uniform and clustered update activity at two rates; the headline floor
asserts >= 1.8x at 4 shards on the uniform workload (merge cost and
shard skew are what eat the ideal 4x, and both are reported).

Byte-identity is asserted in passing — the sharded stream must carry
exactly the monolithic stream's messages and bytes.

Runs as a pytest benchmark and as a plain script; ``SHARD_N`` overrides
the table size (CI smoke-runs it small).
"""

from __future__ import annotations

import os
import random
import sys

if __package__ in (None, ""):  # script mode: `python benchmarks/bench_shard.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core.differential import (
    DifferentialRefresher,
    RefreshCursor,
    run_refresh_scan,
)
from repro.core.shard import SerialShardExecutor, run_sharded_refresh_scan
from repro.database import Database
from repro.expr.predicate import Projection, Restriction
from repro.txn.clock import wall_timer

from benchmarks._util import emit, emit_json

N = int(os.environ.get("SHARD_N", "8000"))
SHARD_COUNTS = (1, 2, 4, 8)
#: (activity fraction, clustered?) — uniform activity is the headline
#: case (balanced shards); a clustered burst stresses the weighted plan.
WORKLOADS = ((0.05, False), (0.05, True), (0.25, False))
FLOOR_SHARDS = 4
FLOOR_SPEEDUP = 1.8
SEED = 1986


class _World:
    """One deterministic refresh state: table, primed cursor inputs."""

    def __init__(self, n: int, fraction: float, clustered: bool) -> None:
        self.db = Database("bench-shard", buffer_capacity=1024)
        self.table = self.db.create_table(
            "t", [("v", "int")], annotations="lazy"
        )
        self.rids = self.table.bulk_load([[i] for i in range(n)])
        self.projection = Projection(self.table.schema)
        self.restriction = Restriction.parse(
            f"v < {3 * n // 4}", self.table.schema
        )
        self.cache: dict = {}
        refresher = DifferentialRefresher(self.table, use_page_summaries=True)
        result = refresher.refresh(
            0,
            self.restriction,
            self.projection,
            lambda m: None,
            cache=self.cache,
        )
        self.snap_time = result.new_snap_time
        rng = random.Random(SEED)
        count = max(1, int(n * fraction))
        if clustered:
            start = rng.randrange(0, n - count + 1)
            victims = self.rids[start : start + count]
        else:
            victims = rng.sample(self.rids, count)
        for rid in victims:
            self.table.update(rid, {"v": rng.randrange(n)})

    def cursor(self, sink: "list[object]") -> RefreshCursor:
        return RefreshCursor(
            self.snap_time,
            self.restriction,
            self.projection,
            sink.append,
            cache=self.cache,
        )


def _measure(n: int, shards: int, fraction: float, clustered: bool):
    timer = wall_timer()

    # World A: the monolithic single-scan pass, clocked end to end.
    mono = _World(n, fraction, clustered)
    mono_stream: "list[object]" = []
    begin = timer()
    mono_stats = run_refresh_scan(
        mono.table, [mono.cursor(mono_stream)], use_page_summaries=True
    )
    t_mono = timer() - begin

    # World B: the identical state split across shard workers.  The
    # serial executor runs them back to back so each worker's injected
    # timer reads contention-free wall time.
    sharded = _World(n, fraction, clustered)
    sharded_stream: "list[object]" = []
    stats = run_sharded_refresh_scan(
        sharded.table,
        [sharded.cursor(sharded_stream)],
        shards=shards,
        use_page_summaries=True,
        executor=SerialShardExecutor(),
        timer=timer,
    )

    # Identical state, identical predicate: byte-identical streams.
    assert [repr(m) for m in sharded_stream] == [repr(m) for m in mono_stream]
    assert stats.bytes_sent == mono_stats.bytes_sent

    if stats.shards >= 2:
        slowest = max(s.wall for s in stats.shard_stats)
        critical = slowest + stats.merge_wall
    else:  # plan collapsed (tiny table) — the pass IS the monolithic one
        slowest = t_mono
        critical = t_mono
    return {
        "n": n,
        "shards_requested": shards,
        "shards_effective": stats.shards,
        "fraction": fraction,
        "clustered": clustered,
        "seconds_monolithic": t_mono,
        "seconds_slowest_shard": slowest,
        "seconds_merge": stats.merge_wall,
        "seconds_critical_path": critical,
        "critical_path_speedup": t_mono / critical if critical else 1.0,
        "shard_skew": stats.shard_skew,
        "pages_scanned": stats.pages_scanned,
        "pages_skipped": stats.pages_skipped,
        "entries_sent": stats.entries_sent,
        "bytes_sent": stats.bytes_sent,
    }


def _check(samples) -> None:
    floor = [
        s
        for s in samples
        if s["shards_requested"] == FLOOR_SHARDS
        and not s["clustered"]
        and s["shards_effective"] >= 2
    ]
    for sample in floor:
        assert sample["critical_path_speedup"] >= FLOOR_SPEEDUP, sample


def run(n: int = N):
    rows = []
    samples = []
    for fraction, clustered in WORKLOADS:
        for shards in SHARD_COUNTS:
            sample = _measure(n, shards, fraction, clustered)
            samples.append(sample)
            rows.append(
                [
                    shards,
                    f"{fraction:.2f}",
                    "clustered" if clustered else "uniform",
                    f"{1000 * sample['seconds_monolithic']:.2f}",
                    f"{1000 * sample['seconds_slowest_shard']:.2f}",
                    f"{1000 * sample['seconds_merge']:.2f}",
                    f"{sample['critical_path_speedup']:.2f}x",
                    f"{sample['shard_skew']:.2f}",
                ]
            )
    emit(
        "shard_refresh",
        f"A19: sharded refresh critical-path speedup (N={n})",
        [
            "shards",
            "activity",
            "pattern",
            "mono ms",
            "slowest shard ms",
            "merge ms",
            "speedup",
            "skew",
        ],
        rows,
    )
    emit_json(
        "shard_refresh",
        {
            "samples": samples,
            "floor": {
                "shards": FLOOR_SHARDS,
                "workload": "uniform",
                "min_critical_path_speedup": FLOOR_SPEEDUP,
                "measured": [
                    s["critical_path_speedup"]
                    for s in samples
                    if s["shards_requested"] == FLOOR_SHARDS
                    and not s["clustered"]
                ],
            },
        },
    )
    _check(samples)
    return samples


def test_shard_refresh_sweep():
    run(N)


if __name__ == "__main__":
    run(N)
