"""A11 — refresh period: the traffic / staleness trade-off.

Snapshots are "periodically refreshed"; the period is the operator's
knob.  A longer period lets differential refresh coalesce more repeated
changes per transmitted entry (cheaper) but leaves the snapshot further
behind on average (staler).  This benchmark drives one hot-spotted
update stream through schedulers with different periods and reports
both sides of the trade.
"""

from __future__ import annotations

import random

import pytest

from repro.core.manager import SnapshotManager
from repro.core.scheduler import RefreshScheduler
from repro.database import Database

from benchmarks._util import emit

N = 800
OPERATIONS = 1_600
HOT_ROWS = 80
PERIODS = (1, 10, 50, 200, 800)


def _run(period):
    rng = random.Random(11)
    db = Database("hq")
    table = db.create_table("t", [("v", "int")])
    rids = table.bulk_load([[i] for i in range(N)])
    manager = SnapshotManager(db)
    manager.create_snapshot("s", "t", method="differential")
    scheduler = RefreshScheduler(manager)
    entry = scheduler.schedule("s", every_ops=period)
    for op_no in range(OPERATIONS):
        target = rids[rng.randrange(HOT_ROWS)]
        table.update(target, {"v": op_no})
    scheduler.flush()
    return entry


def _sweep():
    rows = []
    for period in PERIODS:
        entry = _run(period)
        rows.append(
            [
                period,
                entry.refreshes,
                entry.entries_shipped,
                f"{entry.entries_shipped / OPERATIONS:.3f}",
                f"{entry.average_staleness:.1f}",
            ]
        )
    return rows


@pytest.mark.benchmark(group="period")
def test_refresh_period_tradeoff(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "refresh_period",
        f"A11: refresh period vs traffic and staleness "
        f"({OPERATIONS} updates over {HOT_ROWS} hot rows, N={N})",
        [
            "period (ops)",
            "refreshes",
            "entries shipped",
            "entries per op",
            "avg staleness (ops)",
        ],
        rows,
    )
    shipped = [row[2] for row in rows]
    staleness = [float(row[4]) for row in rows]
    assert shipped == sorted(shipped, reverse=True)  # longer period, less traffic
    assert staleness == sorted(staleness)  # ...at more staleness
