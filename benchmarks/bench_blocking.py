"""A7 — R*-style blocking of refresh messages into frames.

"The normal distributed query execution facilities in R* block the
entries to be transmitted and the execution of both the full and
differential refresh methods take advantage of the blocking to reduce
the cost of the refresh operation."

Sweeps the block size and reports physical frames and total wire bytes
for one full-refresh transmission (logical entry count is invariant).
"""

from __future__ import annotations

import pytest

from repro.core.manager import SnapshotManager
from repro.database import Database
from repro.net.blocking import BlockingChannel
from repro.net.channel import Channel

from benchmarks._util import emit

N = 2_000
BLOCK_SIZES = (1, 8, 32, 128)


def _run_sweep():
    rows = []
    for block_size in BLOCK_SIZES:
        db = Database("hq")
        table = db.create_table("t", [("v", "int")])
        table.bulk_load([[i] for i in range(N)])
        manager = SnapshotManager(db)
        inner = Channel()
        manager.create_snapshot(
            "s", "t", method="full", channel=inner, block_size=block_size
        )
        rows.append(
            [
                block_size,
                inner.stats.messages,
                inner.stats.bytes,
                f"{inner.stats.bytes / N:.1f}",
            ]
        )
    return rows


@pytest.mark.benchmark(group="blocking")
def test_blocking_reduces_physical_messages(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    emit(
        "blocking",
        f"A7: frame blocking for one full-refresh transmission (N={N})",
        ["block size", "physical frames", "wire bytes", "bytes/entry"],
        rows,
    )
    frames = [row[1] for row in rows]
    total_bytes = [row[2] for row in rows]
    assert frames == sorted(frames, reverse=True)
    assert total_bytes == sorted(total_bytes, reverse=True)
