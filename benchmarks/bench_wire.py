"""A16 — the real wire: binary codec vs the fixed-width byte model.

Every earlier benchmark modeled refresh traffic with fixed-width
``wire_size()`` arithmetic.  This one measures it: the refresh stream is
serialized through :class:`~repro.net.wire.WireCodec` (varints,
delta-encoded addresses, frame batching, optional per-frame deflate,
per-column update deltas) and the channel counts the encoded frame
bytes that actually crossed.

Sweep, on a clustered-update workload (one contiguous address range
touched between refreshes — the paper's locality assumption, and the
delta encoder's favorable case):

- ``fixed``            — object transport; bytes == the fixed-width model
- ``compact``          — binary frames (varints + address deltas)
- ``compact+deflate``  — the same frames, zlib per frame
- ``delta``            — compact frames + per-column UpdateDeltaMessages

plus encode/decode throughput of the codec over a synthetic entry
stream.  Runs as a pytest benchmark and as a plain script; ``WIRE_N``
scales the table for CI smoke.
"""

from __future__ import annotations

import os
import sys
import time

if __package__ in (None, ""):  # script mode: `python benchmarks/bench_wire.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import pytest

from repro.core.manager import SnapshotManager
from repro.core.messages import EntryMessage
from repro.database import Database
from repro.net.channel import Channel
from repro.net.wire import WireCodec
from repro.relation.row import Row, encode_row
from repro.relation.schema import Column, Schema
from repro.relation.types import IntType, StringType
from repro.storage.rid import Rid

from benchmarks._util import emit, emit_json

N = int(os.environ.get("WIRE_N", "4000"))
#: Fraction of the table updated (one contiguous cluster) per round.
UPDATE_FRACTION = 0.15
VARIANTS = ("fixed", "compact", "compact+deflate", "delta")


def _schema() -> Schema:
    # The paper's accounts-style row: a key, a short label, and small
    # integer attributes — where fixed 8-byte ints cost varints a byte
    # or two.  (Floats, which both encodings ship as raw 8 bytes, are
    # exercised by the codec tests rather than this traffic sweep.)
    return Schema(
        [
            Column("id", IntType(), nullable=False),
            Column("name", StringType()),
            Column("balance", IntType()),
            Column("branch", IntType()),
            Column("v", IntType()),
        ]
    )


def _build(n: int):
    db = Database("hq")
    table = db.create_table("items", _schema(), annotations="lazy")
    rids = [
        table.insert([i, f"name-{i:05d}", i * 100, i % 13, i % 97])
        for i in range(n)
    ]
    return db, table, rids


def _variant_kwargs(variant: str) -> dict:
    if variant == "fixed":
        return {}
    kwargs = {"wire_format": True}
    if variant == "compact+deflate":
        kwargs["compress"] = True
    if variant == "delta":
        kwargs["delta_updates"] = True
    return kwargs


def _one_variant(variant: str, n: int) -> dict:
    db, table, rids = _build(n)
    manager = SnapshotManager(db)
    channel = Channel()
    snap = manager.create_snapshot(
        "wire_snap", "items", channel=channel, **_variant_kwargs(variant)
    )
    # Warm the delta value cache / page summaries with one quiet round,
    # then measure the clustered-update refresh alone.
    snap.refresh()
    channel.stats.reset()

    start = n // 4
    width = max(1, int(n * UPDATE_FRACTION))
    for i in range(start, start + width):
        table.update(rids[i], {"v": (i * 31) % 89})
    result = snap.refresh()

    stats = channel.stats
    return {
        "variant": variant,
        "entries": result.entries_sent,
        "wire_bytes": stats.bytes,
        "modeled_bytes": stats.modeled_bytes,
        "bytes_per_entry": stats.bytes / max(1, result.entries_sent),
        "merges": snap.table.applied_merges,
    }


def _throughput(n_messages: int = 20_000, frame_size: int = 64) -> dict:
    """Encode+decode rate of the codec over a synthetic entry stream."""
    schema = _schema()
    codec = WireCodec(schema)
    messages = []
    prev = Rid.BEGIN
    for i in range(n_messages):
        rid = Rid(i // 40, i % 40)
        values = (i, f"name-{i:05d}", i * 100, i % 13, i % 97)
        value_bytes = len(encode_row(schema, Row(values)))
        messages.append(EntryMessage(rid, prev, values, value_bytes))
        prev = rid

    chunks = [
        messages[i : i + frame_size]
        for i in range(0, len(messages), frame_size)
    ]
    t0 = time.perf_counter()
    frames = [codec.encode_frame(chunk) for chunk in chunks]
    t1 = time.perf_counter()
    for frame in frames:
        codec.decode_frame(frame)
    t2 = time.perf_counter()

    payload = sum(frame.wire_size() for frame in frames)
    encode_s = max(t1 - t0, 1e-9)
    decode_s = max(t2 - t1, 1e-9)
    return {
        "messages": n_messages,
        "encoded_bytes": payload,
        "encode_msgs_per_s": n_messages / encode_s,
        "decode_msgs_per_s": n_messages / decode_s,
        "encode_mb_per_s": payload / encode_s / 1e6,
        "decode_mb_per_s": payload / decode_s / 1e6,
    }


def _sweep(n: int):
    samples = [_one_variant(variant, n) for variant in VARIANTS]
    rows = []
    fixed_bpe = samples[0]["bytes_per_entry"]
    for sample in samples:
        rows.append(
            [
                sample["variant"],
                sample["entries"],
                sample["wire_bytes"],
                sample["modeled_bytes"],
                f"{sample['bytes_per_entry']:.1f}",
                f"{fixed_bpe / sample['bytes_per_entry']:.2f}x",
            ]
        )
    return rows, samples


def _check(samples) -> None:
    by_variant = {sample["variant"]: sample for sample in samples}
    fixed = by_variant["fixed"]
    compact = by_variant["compact"]
    delta = by_variant["delta"]
    # Object transport's measured bytes ARE the model.
    assert fixed["wire_bytes"] == fixed["modeled_bytes"]
    ratio = fixed["bytes_per_entry"] / compact["bytes_per_entry"]
    assert ratio >= 2.0, (
        f"compact codec only {ratio:.2f}x smaller than fixed-width"
    )
    assert delta["wire_bytes"] < compact["wire_bytes"], (
        f"delta updates ({delta['wire_bytes']}B) not smaller than "
        f"compact ({compact['wire_bytes']}B)"
    )
    assert delta["merges"] > 0, "no per-column merges were applied"
    # Every encoded variant refreshed the same logical stream.
    assert len({sample["entries"] for sample in samples}) == 1


def run(n: int = N):
    rows, samples = _sweep(n)
    throughput = _throughput()
    emit(
        "wire",
        f"A16: bytes on the wire per refresh encoding (N={n}, "
        f"clustered update {UPDATE_FRACTION:.0%})",
        ["encoding", "entries", "wire bytes", "modeled bytes", "bytes/entry", "vs fixed"],
        rows,
    )
    print(
        f"codec throughput: encode {throughput['encode_msgs_per_s']:,.0f} "
        f"msg/s ({throughput['encode_mb_per_s']:.1f} MB/s), decode "
        f"{throughput['decode_msgs_per_s']:,.0f} msg/s "
        f"({throughput['decode_mb_per_s']:.1f} MB/s)"
    )
    emit_json("wire", {"samples": samples, "throughput": throughput})
    _check(samples)
    return samples


@pytest.mark.benchmark(group="wire")
def test_wire_sweep(benchmark):
    samples = benchmark.pedantic(lambda: _sweep(N)[1], rounds=1, iterations=1)
    _check(samples)


if __name__ == "__main__":
    run(N)
