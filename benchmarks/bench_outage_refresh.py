"""A14 — refresh traffic under link outages: differential vs full, with retry.

The paper's traffic argument (differential ships only changed entries)
compounds under failure: a torn refresh must be *retried*, and every
retry of a full refresh re-ships the whole table, while a differential
retry re-ships only the (still small) change set — plus, with page
summaries, it fast-forwards over the pages the dead attempt already
proved clean.  This bench runs both methods through an identical
update/refresh schedule with seeded random mid-stream link kills at a
swept outage rate, and reports delivered traffic, attempt counts, and
correctness (every round must converge to re-evaluation truth).

Runs as a pytest benchmark and as a plain script; ``OUTAGE_N`` overrides
the table size (CI smoke-runs it small).
"""

from __future__ import annotations

import os
import random
import sys

if __package__ in (None, ""):  # script mode: `python benchmarks/bench_outage_refresh.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core.manager import SnapshotManager
from repro.database import Database
from repro.net.faults import FaultyLink
from repro.net.retry import RetryPolicy

from benchmarks._util import emit, emit_json

N = int(os.environ.get("OUTAGE_N", "2000"))
ROUNDS = 8
UPDATES_PER_ROUND = 40
OUTAGE_RATES = (0.0, 0.25, 0.5, 0.75)
SEED = 1986

#: One (coin, position) pair per round, shared by every method and rate:
#: round i suffers an outage at rate r iff coin < r, so the outage set
#: grows monotonically with the rate, and the link dies at the same
#: *fraction* of the refresh stream for both methods — a fixed-length
#: outage window in time hits a long stream deeper than a short one.
_OUTAGE_DRAWS = [
    (rng.random(), rng.random())
    for rng in [random.Random(SEED + 1)]
    for _ in range(64)
]


def _run_method(method: str, rate: float, n: int):
    """One site refreshing ``ROUNDS`` times through a lossy link."""
    db = Database("bench")
    table = db.create_table("t", [("v", "int")], annotations="lazy")
    rids = table.bulk_load([[i] for i in range(n)])
    link = FaultyLink(name=f"{method}-link")
    manager = SnapshotManager(
        db,
        retry_policy=RetryPolicy(max_attempts=10, base_delay=0.0, jitter=0.0),
    )
    snap = manager.create_snapshot("s", "t", method=method, channel=link)
    link.stats.reset()  # charge only the steady-state rounds

    # Both methods replay the same updates (same seed) and the same
    # outage schedule; only the refresh streams differ.
    rng = random.Random(SEED)
    stream_len = n + 3 if method == "full" else UPDATES_PER_ROUND + 4
    attempts = 0
    for round_no in range(ROUNDS):
        for _ in range(UPDATES_PER_ROUND):
            table.update(rids[rng.randrange(n)], {"v": rng.randrange(10**6)})
        coin, position = _OUTAGE_DRAWS[round_no]
        if coin < rate:
            link.fail_at(int(position * stream_len))
        before = link.attempts
        result = snap.refresh()
        link.clear_faults()  # a short stream may never reach its kill
        if result.attempts == 1:
            # Track the clean stream length so kill fractions stay honest
            # as coalescing shrinks the differential stream.
            stream_len = link.attempts - before
        attempts += result.attempts
        truth = {rid: row.values for rid, row in table.scan(visible=True)}
        assert snap.as_map() == truth, (
            f"{method} diverged at rate={rate}"
        )
    handle = manager.snapshot("s")
    return {
        "method": method,
        "rate": rate,
        "n": n,
        "rounds": ROUNDS,
        "attempts": attempts,
        "retries": handle.retries,
        "aborted_epochs": snap.table.aborted_epochs,
        "committed_epochs": snap.table.committed_epochs,
        "delivered_messages": link.stats.messages,
        "delivered_bytes": link.stats.bytes,
    }


def _sweep(n: int):
    rows = []
    samples = []
    for rate in OUTAGE_RATES:
        diff = _run_method("differential", rate, n)
        full = _run_method("full", rate, n)
        ratio = full["delivered_bytes"] / max(1, diff["delivered_bytes"])
        rows.append(
            [
                f"{100 * rate:g}%",
                diff["retries"],
                f"{diff['delivered_bytes']:,}",
                full["retries"],
                f"{full['delivered_bytes']:,}",
                f"{ratio:.1f}x",
            ]
        )
        samples.append({"differential": diff, "full": full, "bytes_ratio": ratio})
    return rows, samples


def _check(samples) -> None:
    for sample in samples:
        diff, full = sample["differential"], sample["full"]
        # Differential's traffic edge must survive (indeed grow with)
        # retries: a full-refresh retry re-ships the table.
        assert sample["bytes_ratio"] > 3, sample
        # Same schedule, same converged state — and failed attempts are
        # visible in the counters exactly when outages were scheduled.
        if diff["rate"] == 0.0:
            assert diff["retries"] == 0 and full["retries"] == 0
    calm = samples[0]["differential"]["retries"]
    stormy = samples[-1]["differential"]["retries"]
    assert stormy > calm, "the highest outage rate never forced a retry"


def run(n: int = N):
    rows, samples = _sweep(n)
    emit(
        "outage_refresh",
        f"A14: delivered refresh traffic vs outage rate, with retry "
        f"(N={n}, {ROUNDS} rounds x {UPDATES_PER_ROUND} updates)",
        [
            "outage rate",
            "diff retries",
            "diff bytes",
            "full retries",
            "full bytes",
            "full/diff",
        ],
        rows,
    )
    emit_json("outage_refresh", samples)
    _check(samples)
    return samples


def test_outage_refresh_sweep():
    run(N)


if __name__ == "__main__":
    run(N)
