"""FIG5-6 — the batch-maintenance worked example + fix-up pass timing.

Regenerates Figure 6's message table from Figure 5's before-state on the
real storage engine, then times the standalone fix-up pass (Figure 7)
over a dirtied 5k-row table — the cost the lazy scheme moves from every
base-table operation onto the refresh path.
"""

from __future__ import annotations

import random

import pytest

from repro.core.differential import DifferentialRefresher
from repro.core.fixup import base_fixup
from repro.core.messages import EntryMessage
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction
from repro.workload.employees import (
    SNAP_TIME,
    figure5_base_table,
    figure5_snapshot_contents,
)

from benchmarks._util import emit


def _run_golden():
    db, table, addrs = figure5_base_table()
    restriction = Restriction.parse("salary < 10", table.schema)
    projection = Projection(table.schema)
    snapshot = SnapshotTable(Database("branch"), "lowpaid", projection.schema)
    for base_addr, values in figure5_snapshot_contents(addrs).items():
        snapshot._upsert(base_addr, values)
    snapshot.snap_time = SNAP_TIME
    messages = []

    def deliver(message):
        messages.append(message)
        snapshot.apply(message)

    result = DifferentialRefresher(table).refresh(
        SNAP_TIME, restriction, projection, deliver
    )
    return addrs, messages, snapshot, result


@pytest.mark.benchmark(group="fig5-6")
def test_fig5_6_golden_example(benchmark):
    addrs, messages, snapshot, result = benchmark(_run_golden)
    reverse = {rid: figure_addr for figure_addr, rid in addrs.items()}
    rows = []
    for message in messages:
        if isinstance(message, EntryMessage):
            rows.append(
                [
                    reverse[message.addr],
                    reverse.get(message.prev_qual, 0),
                    message.values[0],
                    message.values[1],
                ]
            )
    emit(
        "fig5_6",
        "Figures 5-6: combined fix-up + refresh messages "
        "(SnapTime=3.30, BaseTime=4.30, SnapRestrict: Salary < 10)",
        ["BaseAddr", "PrevAddr", "Name", "Salary"],
        rows,
    )
    assert rows == [[2, 0, "Laura", 6], [5, 2, "Mohan", 9]]
    assert {reverse[a] for a in snapshot.as_map()} == {2, 5, 6}


@pytest.mark.benchmark(group="fig5-6")
def test_fixup_pass_cost(benchmark):
    """Fix-up over a 5k-row table with 10% of rows dirtied."""
    rng = random.Random(56)
    db = Database("bench")
    table = db.create_table("t", [("v", "int")], annotations="lazy")
    live = table.bulk_load([[i] for i in range(5_000)])
    base_fixup(table)

    def dirty_and_fixup():
        for _ in range(250):
            table.update(live[rng.randrange(len(live))], {"v": 0})
        for _ in range(125):
            victim = live.pop(rng.randrange(len(live)))
            table.delete(victim)
        for _ in range(125):
            live.append(table.insert([1]))
        return base_fixup(table)

    result = benchmark.pedantic(dirty_and_fixup, rounds=3, iterations=1)
    assert result.scanned == len(live)
