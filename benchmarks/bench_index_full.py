"""A8 — index-assisted full refresh vs differential, measured.

"When an efficient method for applying the snapshot restriction is
available (e.g., an index), the base table sequential scan may be more
costly than simply re-populating the snapshot by executing the snapshot
query."

This benchmark makes the cost model's ``has_index`` input empirical: for
a very selective snapshot (q = 2 %) over an indexed column it measures
*entries read at the base site* and *entries transmitted* for (a)
differential refresh, (b) full refresh via sequential scan, and (c) full
refresh via the index — showing that (c) touches only q·N entries while
differential must always scan N.
"""

from __future__ import annotations

import random

import pytest

from repro.core.differential import DifferentialRefresher
from repro.core.full import FullRefresher
from repro.database import Database
from repro.expr.predicate import Projection, Restriction
from repro.query.indexes import SecondaryIndex

from benchmarks._util import emit

N = 4_000
SELECTIVITY = 0.02
ACTIVITY = 0.02  # a quiet period between refreshes


def _build():
    rng = random.Random(88)
    db = Database("hq")
    table = db.create_table("t", [("v", "int")], annotations="lazy")
    live = table.bulk_load([[rng.randrange(100_000)] for _ in range(N)])
    cutoff = int(SELECTIVITY * 100_000)
    restriction = Restriction.parse(f"v < {cutoff}", table.schema)
    projection = Projection(table.schema)
    index = SecondaryIndex(table, "v")
    differential = DifferentialRefresher(table)
    settle = differential.refresh(0, restriction, projection, lambda m: None)
    for _ in range(int(ACTIVITY * N)):
        target = live[rng.randrange(len(live))]
        table.update(target, {"v": rng.randrange(100_000)})
    return table, index, restriction, projection, differential, settle


def _measure():
    table, index, restriction, projection, differential, settle = _build()
    results = {}
    diff = differential.refresh(
        settle.new_snap_time, restriction, projection, lambda m: None
    )
    results["differential"] = (diff.scanned, diff.entries_sent)
    seq_full = FullRefresher(table, use_indexes=False).refresh(
        0, restriction, projection, lambda m: None
    )
    results["full (seq scan)"] = (seq_full.scanned, seq_full.entries_sent)
    indexed = FullRefresher(table, use_indexes=True)
    idx_full = indexed.refresh(0, restriction, projection, lambda m: None)
    assert indexed.last_access_path is index
    results["full (index scan)"] = (idx_full.scanned, idx_full.entries_sent)
    return results


@pytest.mark.benchmark(group="index-full")
def test_index_assisted_full_refresh(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        [name, scanned, sent]
        for name, (scanned, sent) in results.items()
    ]
    emit(
        "index_full",
        f"A8: base-site entries read vs transmitted "
        f"(N={N}, q={SELECTIVITY:.0%}, u={ACTIVITY:.0%}, index on v)",
        ["method", "entries read", "entries sent"],
        rows,
    )
    diff_scanned, diff_sent = results["differential"]
    seq_scanned, _ = results["full (seq scan)"]
    idx_scanned, idx_sent = results["full (index scan)"]
    assert diff_scanned == N  # differential always scans everything
    assert seq_scanned == N
    assert idx_scanned < N * SELECTIVITY * 2  # index reads ~q·N
    assert diff_sent < idx_sent  # but differential ships far less
