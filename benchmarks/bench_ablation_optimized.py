"""A1 — ablation of the paper's invited optimizations.

Compares the faithful Figure-3/7 differential refresh against the two
optimizations the paper invites the reader to discover:

- ``optimize_deletes``: value-free DeleteRange messages for unchanged
  survivors → same entry count, fewer bytes;
- ``suppress_pure_inserts``: unqualified pure inserts no longer force
  the next qualified entry out → fewer entries on insert-after-delete
  workloads.

Workload (two phases, chosen so each optimization has something to do):

1. delete 15 % of rows, refresh (settles the snapshot; the freed
   addresses are now *clean* empty regions);
2. insert 15 % new rows — first-fit places them into the freed slots —
   then measure one refresh.  Unqualified inserts into clean gaps are
   exactly the superfluous-retransmission case insert suppression
   removes; the deletes measured in phase 1 are where delete-only
   messages save bytes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.differential import DifferentialRefresher
from repro.core.snapshot import SnapshotTable
from repro.database import Database
from repro.expr.predicate import Projection, Restriction

from benchmarks._util import emit

N = 1500
CHURN = int(N * 0.15)
SELECTIVITY = 0.25
CUTOFF = int(SELECTIVITY * 1000)


def _measure(optimize_deletes, suppress_pure_inserts):
    rng = random.Random(41)
    db = Database("abl")
    table = db.create_table("t", [("v", "int")], annotations="lazy")
    live = table.bulk_load([[rng.randrange(1000)] for _ in range(N)])
    restriction = Restriction.parse(f"v < {CUTOFF}", table.schema)
    projection = Projection(table.schema)
    snapshot = SnapshotTable(Database("remote"), "s", projection.schema)
    refresher = DifferentialRefresher(
        table,
        optimize_deletes=optimize_deletes,
        suppress_pure_inserts=suppress_pure_inserts,
    )

    def refresh(snap_time):
        def deliver(message):
            snapshot.apply(message)

        return refresher.refresh(snap_time, restriction, projection, deliver)

    settle = refresh(0)
    # Phase 1: deletes, measured (delete-only messages fire here).
    for _ in range(CHURN):
        victim = live.pop(rng.randrange(len(live)))
        table.delete(victim)
    phase1 = refresh(settle.new_snap_time)
    # Phase 2: inserts into the (now clean) freed regions, measured
    # (insert suppression fires here).
    for _ in range(CHURN):
        live.append(table.insert([rng.randrange(1000)]))
    phase2 = refresh(phase1.new_snap_time)

    truth = {
        rid: row.values
        for rid, row in table.scan(visible=True)
        if row.values[0] < CUTOFF
    }
    assert snapshot.as_map() == truth
    return phase1, phase2


def _run_all():
    return {
        "baseline (Fig 3/7)": _measure(False, False),
        "+delete-only msgs": _measure(True, False),
        "+insert suppression": _measure(False, True),
        "both": _measure(True, True),
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_invited_optimizations(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    base1, base2 = results["baseline (Fig 3/7)"]
    rows = []
    for name, (phase1, phase2) in results.items():
        rows.append(
            [
                name,
                phase1.entries_sent,
                phase1.bytes_sent,
                phase2.entries_sent,
                phase2.bytes_sent,
                f"{100 * phase1.bytes_sent / max(base1.bytes_sent, 1):.0f}",
                f"{100 * phase2.entries_sent / max(base2.entries_sent, 1):.0f}",
            ]
        )
    emit(
        "ablation_optimized",
        f"A1: invited optimizations (N={N}, q={SELECTIVITY}, "
        f"{CHURN} deletes then {CHURN} inserts)",
        [
            "variant",
            "del-phase entries", "del-phase bytes",
            "ins-phase entries", "ins-phase bytes",
            "del bytes%", "ins entries%",
        ],
        rows,
    )
    opt1, opt2 = results["+delete-only msgs"]
    assert opt1.entries_sent == base1.entries_sent  # same tuple metric
    assert opt1.bytes_sent < base1.bytes_sent  # cheaper on the wire
    sup1, sup2 = results["+insert suppression"]
    assert sup2.entries_sent < base2.entries_sent  # fewer retransmissions
    both1, both2 = results["both"]
    assert both1.bytes_sent <= opt1.bytes_sent
    assert both2.entries_sent <= sup2.entries_sent
