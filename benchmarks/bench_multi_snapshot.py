"""A6 — multi-snapshot amortization.

"Multiple snapshots on a single base table do not require additional
annotations and much of the extra work is amortized over the set of
snapshots depending upon the base table."

K snapshots share one base table; after a batch of modifications each
refreshes in turn.  Only the first refresh pays fix-up writes; all K
transmit the same change set.
"""

from __future__ import annotations

import random

import pytest

from repro.core.manager import SnapshotManager
from repro.database import Database

from benchmarks._util import emit

N = 1_000
CHANGES = 100
SNAPSHOT_COUNTS = (1, 2, 4, 8)


def _run(k):
    rng = random.Random(66)
    db = Database("hq")
    table = db.create_table("t", [("v", "int")])
    table.bulk_load([[i] for i in range(N)])
    manager = SnapshotManager(db)
    snaps = [
        manager.create_snapshot(f"s{i}", "t", method="differential")
        for i in range(k)
    ]
    rids = [rid for rid, _ in table.scan()]
    for _ in range(CHANGES):
        table.update(rids[rng.randrange(N)], {"v": rng.randrange(10**6)})
    results = [snap.refresh() for snap in snaps]
    return results


def _series():
    rows = []
    for k in SNAPSHOT_COUNTS:
        results = _run(k)
        total_fixups = sum(r.fixup_writes for r in results)
        rows.append(
            [
                k,
                results[0].fixup_writes,
                total_fixups,
                f"{total_fixups / k:.1f}",
                results[0].entries_sent,
                results[-1].entries_sent,
            ]
        )
    return rows


@pytest.mark.benchmark(group="multi-snapshot")
def test_multi_snapshot_amortization(benchmark):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    emit(
        "multi_snapshot",
        f"A6: K snapshots sharing one base table's annotations "
        f"({CHANGES} updates on {N} rows)",
        [
            "K", "fixups (1st refresh)", "fixups (total)",
            "fixups per snapshot", "entries (1st)", "entries (Kth)",
        ],
        rows,
    )
    # Total fix-up work is constant in K: per-snapshot share falls as 1/K.
    totals = [row[2] for row in rows]
    assert len(set(totals)) == 1
    # Every snapshot (first or last to refresh) sees the full change set.
    assert all(row[4] == row[5] for row in rows)
