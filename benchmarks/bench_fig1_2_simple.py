"""FIG1-2 — the simple algorithm's worked example + dense-scan timing.

Regenerates the exact message table of Figure 1 and the snapshot
before/after of Figure 2, then times the simple algorithm's full
address-space scan at a realistic size (its cost is what motivates the
practical variants).
"""

from __future__ import annotations

import pytest

from repro.core.simple import SimpleBaseTable, SimpleElementMessage, SimpleSnapshot
from repro.relation.schema import Schema
from repro.workload.employees import (
    BASE_TIME,
    SNAP_TIME,
    figure1_simple_table,
    figure2_snapshot_before,
)

from benchmarks._util import emit


def _run_golden():
    table = figure1_simple_table()
    snapshot = SimpleSnapshot()
    snapshot.entries = figure2_snapshot_before()
    messages = []

    def deliver(message):
        messages.append(message)
        snapshot.apply(message)

    table.refresh(SNAP_TIME, lambda v: v[1] < 10, deliver)
    return messages, snapshot


@pytest.mark.benchmark(group="fig1-2")
def test_fig1_2_golden_example(benchmark):
    messages, snapshot = benchmark(_run_golden)
    rows = []
    for message in messages:
        if isinstance(message, SimpleElementMessage):
            status = "empty" if message.empty else "ok"
            name, salary = message.values if message.values else ("-", "-")
            rows.append([message.addr, status, name, salary])
    emit(
        "fig1_2",
        f"Figures 1-2: refresh messages (SnapTime={SNAP_TIME/100}, "
        f"BaseTime={BASE_TIME/100}, SnapRestrict: Salary < 10)",
        ["BaseAddr", "Status", "Name", "Salary"],
        rows,
    )
    assert [(r[0], r[1]) for r in rows] == [
        (2, "ok"), (3, "empty"), (4, "empty"), (7, "empty"),
    ]
    assert snapshot.as_map() == {
        2: ("Laura", 6), 5: ("Mohan", 9), 6: ("Paul", 8),
    }


@pytest.mark.benchmark(group="fig1-2")
def test_simple_refresh_scan_cost(benchmark):
    """The simple algorithm scans EVERY address, occupied or not."""
    schema = Schema.of(("v", "int"),)
    table = SimpleBaseTable(20_000, schema)
    for _ in range(2_000):  # only 10% occupancy
        table.insert((1,))
    counter = {"messages": 0}

    def refresh():
        counter["messages"] = 0
        table.refresh(10**9, lambda v: True, lambda m: None)

    benchmark(refresh)
