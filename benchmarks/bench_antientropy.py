"""A18 — hash-bisection anti-entropy: resync traffic vs drift rate.

A snapshot that has silently drifted (lost epoch, bit rot, operator
surgery) can always be healed by re-shipping the whole restriction —
that is just a full refresh.  The anti-entropy session instead
exchanges per-segment hashes over the RID address space, bisects into
mismatching segments only, and re-ships the dirty leaves.  Its traffic
is therefore proportional to the *drift*, not the table: at small
drift rates the hash exchange dominates (logarithmic in pages), and
the repair stream covers a handful of leaf pages.

This bench drifts a receiver by a swept fraction of its rows via a
*lost epoch* — committed base writes (inserts, updates, deletes in the
same mix the other benches replay) whose refresh never landed — then
resyncs and compares total session bytes (hashes + repairs) against
the naive resend.  Correctness gate: every resync must converge to
re-evaluation truth, and at 0.1% drift the byte reduction must be at
least 50x on the full-size table.

Runs as a pytest benchmark and as a plain script; ``ANTIENTROPY_N``
overrides the base-table size (CI smoke-runs it small).
"""

from __future__ import annotations

import os
import random
import sys

if __package__ in (None, ""):  # script mode: `python benchmarks/bench_antientropy.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core.manager import SnapshotManager
from repro.core.messages import UpsertMessage
from repro.database import Database
from repro.relation.row import encode_row

from benchmarks._util import emit, emit_json

N = int(os.environ.get("ANTIENTROPY_N", "100000"))
DRIFT_RATES = (0.0001, 0.001, 0.01, 0.1)
SEED = 1986

#: The acceptance gate only binds at full size: on a smoke-sized table
#: the fixed hash-exchange floor is a larger share of a smaller resend.
FULL_SIZE_FLOOR = 50
SMOKE_FLOOR = 20


def _build(n: int):
    db = Database("bench-ae", buffer_capacity=256)
    table = db.create_table("emp", [("name", "string"), ("salary", "int")])
    table.bulk_load([[f"e{i}", i % 20] for i in range(n)])
    manager = SnapshotManager(db)
    snap = manager.create_snapshot(
        "low", "emp", where="salary < 10", method="differential"
    )
    manager.refresh("low")
    return db, table, manager, snap


def _truth(table):
    return {
        rid: (row[0], row[1]) for rid, row in table.scan() if row[1] < 10
    }


def _contents(snap):
    return {
        addr: tuple(values)[:2]
        for addr, values in snap.table.as_map().items()
    }


def _full_resend_bytes(manager, table) -> int:
    """Wire bytes of upserting the whole restriction (the naive resync)."""
    handle = manager.snapshot("low")
    total = 0
    for rid, row in table.scan_full():
        if not handle.restriction(list(row.values)):
            continue
        projected = handle.projection(row)
        blob = encode_row(handle.projection.schema, projected)
        total += UpsertMessage(rid, projected.values, len(blob)).wire_size()
    return total


def _drift(table, snap, rate: float, rng: random.Random) -> int:
    """Lose an epoch: base writes drifting ``rate`` of the receiver.

    Each op changes exactly one receiver row — an update rewrites a
    qualifying row's salary to a different qualifying value, a delete
    removes a qualifying row, an insert adds one — so the receiver is
    left ``count`` rows out of date, with updates and deletes scattered
    across the heap and inserts clustered at its tail, the shape a real
    lost update batch has.
    """
    count = max(1, int(len(snap.table.base_addrs()) * rate))
    qualifying = [(rid, row[1]) for rid, row in table.scan() if row[1] < 10]
    victims = rng.sample(qualifying, 2 * (count // 3))
    ops = 0
    for i, (rid, old) in enumerate(victims):
        if i % 2:
            table.update(rid, {"salary": (old + 1 + rng.randrange(9)) % 10})
        else:
            table.delete(rid)
        ops += 1
    while ops < count:
        table.insert([f"lost{ops}", rng.randrange(10)])
        ops += 1
    return count


def _sweep(n: int):
    db, table, manager, snap = _build(n)
    rng = random.Random(SEED)
    rows, samples = [], []
    for rate in DRIFT_RATES:
        drifted = _drift(table, snap, rate, rng)
        resend_bytes = _full_resend_bytes(manager, table)
        page_count = table.heap.page_count
        stats = manager.resync_snapshot("low")
        assert _contents(snap) == _truth(table), f"diverged at rate={rate}"
        ratio = resend_bytes / max(1, stats.bytes_total)
        rows.append(
            [
                f"{100 * rate:g}%",
                drifted,
                stats.segments_hashed,
                stats.leaves_repaired,
                f"{stats.bytes_hashes:,}",
                f"{stats.bytes_repair:,}",
                f"{ratio:.1f}x",
            ]
        )
        samples.append(
            {
                "rate": rate,
                "n": n,
                "drifted_rows": drifted,
                "rounds": stats.rounds,
                "segments_hashed": stats.segments_hashed,
                "segments_mismatched": stats.segments_mismatched,
                "leaves_repaired": stats.leaves_repaired,
                "pages_total": page_count,
                "rows_repaired": stats.rows_repaired,
                "bytes_hashes": stats.bytes_hashes,
                "bytes_repair": stats.bytes_repair,
                "bytes_total": stats.bytes_total,
                "full_resend_bytes": resend_bytes,
                "bytes_ratio": ratio,
            }
        )
    return rows, samples


def _check(samples) -> None:
    floor = FULL_SIZE_FLOOR if samples[0]["n"] >= 100_000 else SMOKE_FLOOR
    for sample in samples:
        # Bisection must prune: at small drift the hash exchange is
        # logarithmic in pages, not linear.  (At heavy drift almost
        # every page is dirty, so internal nodes push the segment
        # count past the page count — no pruning left to measure.)
        if sample["rate"] <= 0.001 and sample["pages_total"] > 8:
            assert sample["segments_hashed"] < sample["pages_total"], sample
        if sample["rate"] == 0.001:
            assert sample["bytes_ratio"] >= floor, (
                f"0.1% drift resync saved only "
                f"{sample['bytes_ratio']:.1f}x (< {floor}x): {sample}"
            )
    # Traffic must scale with drift, not the table.
    assert samples[0]["bytes_total"] < samples[-1]["full_resend_bytes"]


def run(n: int = N):
    rows, samples = _sweep(n)
    emit(
        "antientropy",
        f"A18: anti-entropy resync traffic vs drift rate (N={n})",
        [
            "drift",
            "rows drifted",
            "segments hashed",
            "leaves repaired",
            "hash bytes",
            "repair bytes",
            "resend/resync",
        ],
        rows,
    )
    emit_json("antientropy", samples)
    _check(samples)
    return samples


def test_antientropy_sweep():
    run(N)


if __name__ == "__main__":
    run(N)
