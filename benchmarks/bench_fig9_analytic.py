"""FIG9-ANALYTIC — the analysis half of Figure 9 (q = 1 %, 5 %)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.model import TrafficModel

from benchmarks._util import emit

SELECTIVITIES = (0.01, 0.05)
ACTIVITIES = tuple(x / 20 for x in range(1, 41))


def _evaluate_grid():
    return {q: TrafficModel(q).series(list(ACTIVITIES)) for q in SELECTIVITIES}


@pytest.mark.benchmark(group="fig9")
def test_fig9_analytic_curves(benchmark):
    grid = benchmark(_evaluate_grid)
    rows = []
    for q in SELECTIVITIES:
        for point in grid[q][::5]:
            diff_pct = 100 * point["differential"]
            rows.append(
                [
                    f"{100 * q:.0f}",
                    f"{100 * point['activity']:.0f}",
                    f"{100 * point['ideal']:.3f}",
                    f"{diff_pct:.3f}",
                    f"{100 * point['full']:.3f}",
                    f"{math.log10(diff_pct):.2f}" if diff_pct > 0 else "-inf",
                ]
            )
    emit(
        "fig9_analytic",
        "Figure 9 (analysis): restrictive snapshots, log-scale view",
        ["q%", "u%", "ideal%", "diff%", "full%", "log10(diff%)"],
        rows,
    )
    # Tight restrictions: differential converges to full fast.
    for q in SELECTIVITIES:
        final = grid[q][-1]
        assert final["differential"] > 0.95 * final["full"]
        model = TrafficModel(q)
        assert model.superfluous_ratio(0.05) > model.superfluous_ratio(2.0)
