"""A12 — the cost of eager vs lazy annotation maintenance.

The paper's central motivation for batch maintenance: the eager variant
"has a serious impact on operations which insert or delete from the base
table" (each one must also update its successor's annotations), while
under lazy maintenance "base table operations ... has little effect upon
the performance and complexity of the base table operations" — the cost
moves to the refresh, "which *should* bear the costs associated with
maintaining the snapshot".

Measured: physical record writes per base operation (heap-level insert/
update/delete counts) and wall time, for the same operation stream over
(a) a plain table, (b) a lazily annotated table, (c) an eagerly
annotated table — then the refresh-side bill for each annotated mode.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.differential import DifferentialRefresher
from repro.database import Database
from repro.expr.predicate import Projection, Restriction

from benchmarks._util import emit

N = 1_000
OPERATIONS = 1_000


def _drive(mode):
    rng = random.Random(12)
    db = Database("hq")
    annotations = None if mode == "none" else mode
    table = db.create_table("t", [("v", "int")], annotations=annotations)
    if mode == "eager":
        live = [table.insert([i]) for i in range(N)]
    else:
        live = table.bulk_load([[i] for i in range(N)])
    if mode == "lazy":
        # Settle the load's NULL annotations so the refresh-side number
        # reflects only the measured operation stream.
        from repro.core.fixup import base_fixup

        base_fixup(table)
    table.heap.writes.reset()
    start = time.perf_counter()
    for _ in range(OPERATIONS):
        roll = rng.random()
        if roll < 0.4:
            live.append(table.insert([rng.randrange(10**6)]))
        elif roll < 0.7 and len(live) > 10:
            table.delete(live.pop(rng.randrange(len(live))))
        else:
            target = live[rng.randrange(len(live))]
            new_rid = table.update(target, {"v": rng.randrange(10**6)})
            if new_rid != target:
                live[live.index(target)] = new_rid
    elapsed = time.perf_counter() - start
    writes = table.heap.writes.total
    refresh_result = None
    if mode != "none":
        restriction = Restriction.true(table.schema)
        projection = Projection(table.schema)
        refresher = DifferentialRefresher(table)
        table.heap.writes.reset()
        refresh_result = refresher.refresh(
            0, restriction, projection, lambda m: None
        )
    return writes, elapsed, refresh_result, table


def _sweep():
    rows = []
    for mode in ("none", "lazy", "eager"):
        writes, elapsed, refresh_result, table = _drive(mode)
        refresh_writes = (
            refresh_result.fixup_writes if refresh_result is not None else 0
        )
        rows.append(
            [
                mode,
                writes,
                f"{writes / OPERATIONS:.2f}",
                f"{1000 * elapsed:.0f}",
                refresh_writes,
            ]
        )
    return rows


@pytest.mark.benchmark(group="maintenance")
def test_eager_vs_lazy_maintenance_cost(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "maintenance_cost",
        f"A12: base-operation cost by annotation mode "
        f"({OPERATIONS} mixed ops on N={N}; refresh fix-up writes shown "
        "for annotated modes)",
        [
            "mode", "record writes", "writes per op",
            "ms total", "refresh fix-up writes",
        ],
        rows,
    )
    by_mode = {row[0]: row for row in rows}
    none_writes = by_mode["none"][1]
    lazy_writes = by_mode["lazy"][1]
    eager_writes = by_mode["eager"][1]
    # Lazy base operations cost the same physical writes as no
    # annotations at all; eager pays extra successor updates.
    assert lazy_writes == none_writes
    assert eager_writes > lazy_writes * 1.3
    # And the bill the lazy scheme deferred shows up at refresh time.
    assert by_mode["lazy"][4] > 0
    assert by_mode["eager"][4] == 0
